// Tests for the WOJ planner, graph reordering, graph metrics, pattern
// containment / maximal frequent patterns, and the explicit-transfer
// baseline placement.
#include <gtest/gtest.h>

#include "algos/kclique.h"
#include "algos/subgraph_matching.h"
#include "core/plan.h"
#include "graph/generators.h"
#include "graph/isomorphism.h"
#include "graph/metrics.h"
#include "graph/reorder.h"

namespace gpm {
namespace {

gpusim::SimParams TestParams() {
  gpusim::SimParams p;
  p.device_memory_bytes = 8 << 20;
  p.um_device_buffer_bytes = 512 << 10;
  return p;
}

graph::Graph RandomLabeled(uint64_t seed) {
  Rng rng(seed);
  graph::Graph g = graph::PowerLaw(120, 500, 0.8, &rng);
  graph::AssignLabelsZipf(&g, 3, 0.5, &rng);
  return g;
}

// ---- Planner ---------------------------------------------------------------

TEST(PlanTest, OrdersAreConnectedPermutations) {
  graph::Graph g = RandomLabeled(1);
  for (const graph::Pattern& q :
       {graph::Pattern::Diamond(), graph::Pattern::SmQuery(2, 3),
        graph::Pattern::Cycle(5), graph::Pattern::Star(4)}) {
    for (core::PlanStrategy s : {core::PlanStrategy::kStructural,
                                 core::PlanStrategy::kGreedyCardinality}) {
      core::WojPlan plan = core::BuildWojPlan(g, q, s);
      ASSERT_EQ(plan.order.size(),
                static_cast<std::size_t>(q.num_vertices()));
      EXPECT_TRUE(q.ConnectedPrefix(plan.order)) << plan.DebugString();
      std::vector<int> sorted = plan.order;
      std::sort(sorted.begin(), sorted.end());
      for (int i = 0; i < q.num_vertices(); ++i) EXPECT_EQ(sorted[i], i);
    }
  }
}

TEST(PlanTest, BackwardPositionsMatchQueryEdges) {
  graph::Graph g = RandomLabeled(2);
  graph::Pattern q = graph::Pattern::Diamond();
  core::WojPlan plan =
      core::BuildWojPlan(g, q, core::PlanStrategy::kStructural);
  for (std::size_t d = 1; d < plan.order.size(); ++d) {
    for (int j : plan.backward[d]) {
      EXPECT_TRUE(q.HasEdge(plan.order[d], plan.order[j]));
    }
    EXPECT_FALSE(plan.backward[d].empty());
  }
}

TEST(PlanTest, CardinalityGrowsWithUnconstrainedDepth) {
  graph::Graph g = RandomLabeled(3);
  graph::Pattern q = graph::Pattern::Path(4);  // no closing edges
  std::vector<int> order{0, 1, 2, 3};
  double prev = core::EstimateCardinality(g, q, order, 0);
  for (int d = 1; d < 4; ++d) {
    double next = core::EstimateCardinality(g, q, order, d);
    EXPECT_GT(next, prev * 0.999);
    prev = next;
  }
}

TEST(PlanTest, GreedyPlanGivesSameCounts) {
  graph::Graph g = RandomLabeled(4);
  g.EnsureEdgeIndex();
  graph::Pattern q = graph::Pattern::SmQuery(3, 3);
  uint64_t expected = graph::CountEmbeddings(g, q);
  gpusim::Device device(TestParams());
  core::GammaEngine engine(&device, &g, {});
  ASSERT_TRUE(engine.Prepare().ok());
  core::WojPlan plan = core::BuildWojPlan(
      g, q, core::PlanStrategy::kGreedyCardinality);
  auto r = algos::MatchWojWithPlan(&engine, q, plan);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().embeddings, expected);
}

TEST(PlanTest, EstimatedCostPositive) {
  graph::Graph g = RandomLabeled(5);
  core::WojPlan plan = core::BuildWojPlan(
      g, graph::Pattern::Triangle(), core::PlanStrategy::kStructural);
  EXPECT_GT(plan.estimated_cost, 0.0);
}

TEST(PlanTest, GreedyTieBreakingIsDeterministic) {
  graph::Graph g = RandomLabeled(15);
  // Fully symmetric patterns make every greedy step a tie; the
  // deterministic tie-break (more backward edges, then smaller index)
  // must resolve them to the identity order, every time.
  for (const graph::Pattern& q :
       {graph::Pattern::Cycle(4), graph::Pattern::Clique(4),
        graph::Pattern::Clique(5)}) {
    core::WojPlan first = core::BuildWojPlan(
        g, q, core::PlanStrategy::kGreedyCardinality);
    std::vector<int> identity(q.num_vertices());
    for (int i = 0; i < q.num_vertices(); ++i) identity[i] = i;
    EXPECT_EQ(first.order, identity) << q.DebugString();
    for (int rebuild = 0; rebuild < 4; ++rebuild) {
      core::WojPlan again = core::BuildWojPlan(
          g, q, core::PlanStrategy::kGreedyCardinality);
      EXPECT_EQ(again.order, first.order) << q.DebugString();
      EXPECT_EQ(again.estimated_cost, first.estimated_cost);
    }
  }
  // Asymmetric costs must also reproduce across rebuilds.
  core::WojPlan labeled = core::BuildWojPlan(
      g, graph::Pattern::SmQuery(3, 3),
      core::PlanStrategy::kGreedyCardinality);
  for (int rebuild = 0; rebuild < 4; ++rebuild) {
    EXPECT_EQ(core::BuildWojPlan(g, graph::Pattern::SmQuery(3, 3),
                                 core::PlanStrategy::kGreedyCardinality)
                  .order,
              labeled.order);
  }
}

TEST(PlanTest, LabeledCardinalityUsesPerLabelFrequency) {
  graph::Graph g = RandomLabeled(16);  // Zipf labels over {0, 1, 2}
  std::vector<uint64_t> freq(g.num_labels(), 0);
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
    ++freq[g.label(v)];
  }
  ASSERT_GT(freq[0], freq[2]);  // Zipf skew: the test is vacuous if equal
  graph::Pattern q(1);
  std::vector<int> order{0};
  // Depth-0 estimate is the number of start candidates: all vertices for
  // a wildcard, the per-label count for a concrete label.
  q.SetLabel(0, graph::Pattern::kAnyLabel);
  EXPECT_DOUBLE_EQ(core::EstimateCardinality(g, q, order, 0),
                   static_cast<double>(g.num_vertices()));
  for (graph::Label l = 0; l < g.num_labels(); ++l) {
    q.SetLabel(0, l);
    EXPECT_DOUBLE_EQ(core::EstimateCardinality(g, q, order, 0),
                     static_cast<double>(freq[l]))
        << "label " << l;
  }
  // A label absent from the graph matches nothing.
  q.SetLabel(0, 7);
  EXPECT_DOUBLE_EQ(core::EstimateCardinality(g, q, order, 0), 0.0);
}

TEST(PlanTest, UnlabeledGraphConcreteLabelEstimatesZero) {
  Rng rng(17);
  graph::Graph g = graph::PowerLaw(100, 400, 0.8, &rng);  // unlabeled
  graph::Pattern q(1);
  std::vector<int> order{0};
  // Every vertex of an unlabeled graph carries label 0; any other
  // concrete query label must estimate to zero, not |V|.
  q.SetLabel(0, 0);
  EXPECT_DOUBLE_EQ(core::EstimateCardinality(g, q, order, 0),
                   static_cast<double>(g.num_vertices()));
  q.SetLabel(0, 1);
  EXPECT_DOUBLE_EQ(core::EstimateCardinality(g, q, order, 0), 0.0);
}

TEST(PlanTest, GreedyStartsAtRareLabel) {
  graph::Graph g = RandomLabeled(18);
  std::vector<uint64_t> freq(g.num_labels(), 0);
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
    ++freq[g.label(v)];
  }
  ASSERT_GT(freq[0], freq[2]);
  // Symmetric structure, one rare-labeled vertex: the greedy planner must
  // start there.
  graph::Pattern q = graph::Pattern::Triangle();
  q.SetLabel(0, 0);
  q.SetLabel(1, 0);
  q.SetLabel(2, 2);
  core::WojPlan plan = core::BuildWojPlan(
      g, q, core::PlanStrategy::kGreedyCardinality);
  EXPECT_EQ(plan.order[0], 2) << plan.DebugString();
}

// ---- Reordering ------------------------------------------------------------

TEST(ReorderTest, PermutationIsBijective) {
  graph::Graph g = RandomLabeled(6);
  for (graph::ReorderStrategy s :
       {graph::ReorderStrategy::kDegreeDescending,
        graph::ReorderStrategy::kBfs, graph::ReorderStrategy::kRandom}) {
    auto perm = graph::ReorderPermutation(g, s);
    std::vector<bool> seen(g.num_vertices(), false);
    for (auto p : perm) {
      ASSERT_LT(p, g.num_vertices());
      EXPECT_FALSE(seen[p]);
      seen[p] = true;
    }
  }
}

TEST(ReorderTest, PreservesStructure) {
  graph::Graph g = RandomLabeled(7);
  graph::Graph r = graph::Reorder(g, graph::ReorderStrategy::kRandom, 9);
  EXPECT_EQ(r.num_vertices(), g.num_vertices());
  EXPECT_EQ(r.num_edges(), g.num_edges());
  EXPECT_EQ(graph::CountInstances(r, graph::Pattern::Triangle()),
            graph::CountInstances(g, graph::Pattern::Triangle()));
}

TEST(ReorderTest, DegreeDescendingPutsHubsFirst) {
  graph::Graph g = RandomLabeled(8);
  graph::Graph r =
      graph::Reorder(g, graph::ReorderStrategy::kDegreeDescending);
  for (graph::VertexId v = 1; v < r.num_vertices(); ++v) {
    EXPECT_GE(r.degree(v - 1), r.degree(v));
  }
}

TEST(ReorderTest, LabelsFollowVertices) {
  graph::Graph g = RandomLabeled(9);
  auto perm =
      graph::ReorderPermutation(g, graph::ReorderStrategy::kRandom, 3);
  graph::Graph r = graph::ApplyPermutation(g, perm);
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(r.label(perm[v]), g.label(v));
  }
}

TEST(DegeneracyTest, PeelOrderCoversAllVertices) {
  graph::Graph g = RandomLabeled(20);
  std::vector<graph::VertexId> order;
  uint32_t degeneracy = graph::DegeneracyOrder(g, &order);
  EXPECT_EQ(order.size(), g.num_vertices());
  std::vector<bool> seen(g.num_vertices(), false);
  for (auto v : order) {
    ASSERT_LT(v, g.num_vertices());
    EXPECT_FALSE(seen[v]);
    seen[v] = true;
  }
  EXPECT_GE(degeneracy, 1u);
  EXPECT_LE(degeneracy, g.max_degree());
}

TEST(DegeneracyTest, CliqueHasDegeneracyKMinusOne) {
  std::vector<graph::Edge> edges;
  for (graph::VertexId i = 0; i < 6; ++i) {
    for (graph::VertexId j = i + 1; j < 6; ++j) edges.push_back({i, j});
  }
  graph::Graph clique = graph::Graph::FromEdges(6, edges);
  std::vector<graph::VertexId> order;
  EXPECT_EQ(graph::DegeneracyOrder(clique, &order), 5u);
}

TEST(DegeneracyTest, StarHasDegeneracyOne) {
  std::vector<graph::Edge> edges;
  for (graph::VertexId i = 1; i < 20; ++i) edges.push_back({0, i});
  graph::Graph star = graph::Graph::FromEdges(20, edges);
  std::vector<graph::VertexId> order;
  EXPECT_EQ(graph::DegeneracyOrder(star, &order), 1u);
  // The hub survives until the final pair (hub + last leaf, both now
  // degree 1, peel in either order).
  EXPECT_TRUE(order.back() == 0u || order[order.size() - 2] == 0u);
}

TEST(DegeneracyTest, ForwardNeighborhoodsBounded) {
  graph::Graph g = RandomLabeled(21);
  std::vector<graph::VertexId> order;
  uint32_t degeneracy = graph::DegeneracyOrder(g, &order);
  graph::Graph oriented =
      graph::Reorder(g, graph::ReorderStrategy::kDegeneracy);
  for (graph::VertexId v = 0; v < oriented.num_vertices(); ++v) {
    auto nbrs = oriented.neighbors(v);
    std::size_t forward =
        nbrs.end() - std::upper_bound(nbrs.begin(), nbrs.end(), v);
    EXPECT_LE(forward, degeneracy) << "vertex " << v;
  }
}

TEST(DegeneracyTest, OrientedKCliqueMatchesOracle) {
  graph::Graph g = RandomLabeled(22);
  gpusim::Device device(TestParams());
  auto r = algos::CountKCliquesOriented(&device, g, 4, {});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().cliques,
            graph::CountInstances(g, graph::Pattern::Clique(4)));
}

TEST(DegeneracyTest, OrientationHelpsOnSkewedGraphs) {
  Rng rng(23);
  graph::Graph g = graph::PowerLaw(2000, 16000, 1.0, &rng);  // heavy hubs
  gpusim::Device d1(TestParams()), d2(TestParams());
  core::GammaEngine plain_engine(&d1, &g, {});
  ASSERT_TRUE(plain_engine.Prepare().ok());
  auto plain = algos::CountKCliques(&plain_engine, 4);
  auto oriented = algos::CountKCliquesOriented(&d2, g, 4, {});
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(oriented.ok());
  EXPECT_EQ(plain.value().cliques, oriented.value().cliques);
  EXPECT_LE(oriented.value().sim_millis, plain.value().sim_millis * 1.2);
}

// ---- Metrics ---------------------------------------------------------------

TEST(MetricsTest, TriangleOfToyGraph) {
  graph::Graph g = graph::Graph::FromEdges(
      5, {{0, 1}, {0, 2}, {1, 2}, {1, 3}, {2, 3}, {3, 4}});
  graph::GraphMetrics m = graph::ComputeMetrics(g);
  EXPECT_EQ(m.triangles, 2u);
  EXPECT_EQ(m.num_edges, 6u);
  EXPECT_EQ(m.max_degree, 3u);
  EXPECT_GT(m.clustering, 0.0);
  EXPECT_LE(m.clustering, 1.0);
}

TEST(MetricsTest, MatchesOracleOnRandomGraph) {
  graph::Graph g = RandomLabeled(10);
  graph::GraphMetrics m = graph::ComputeMetrics(g);
  EXPECT_EQ(m.triangles,
            graph::CountInstances(g, graph::Pattern::Triangle()));
  EXPECT_DOUBLE_EQ(m.avg_degree, g.average_degree());
}

TEST(MetricsTest, PowerLawIsSkewed) {
  Rng rng(11);
  graph::Graph pl = graph::PowerLaw(1000, 5000, 1.0, &rng);
  graph::Graph er = graph::ErdosRenyi(1000, 5000, &rng);
  EXPECT_GT(graph::ComputeMetrics(pl).skew,
            graph::ComputeMetrics(er).skew);
}

TEST(MetricsTest, CountsConnectedComponents) {
  // Two triangles plus two isolated vertices = 4 components.
  graph::Graph g = graph::Graph::FromEdges(
      8, {{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}});
  graph::GraphMetrics m = graph::ComputeMetrics(g);
  EXPECT_EQ(m.connected_components, 4u);
  EXPECT_EQ(m.isolated_vertices, 2u);
}

TEST(MetricsTest, HistogramCoversAllVertices) {
  graph::Graph g = RandomLabeled(12);
  auto hist = graph::DegreeHistogram(g);
  std::size_t total = 0;
  for (auto b : hist) total += b;
  EXPECT_EQ(total, g.num_vertices());
}

// ---- Pattern containment / maximal patterns --------------------------------

TEST(ContainmentTest, EdgeInTriangle) {
  EXPECT_TRUE(graph::Pattern::Path(2).ContainedIn(
      graph::Pattern::Triangle()));
  EXPECT_TRUE(
      graph::Pattern::Path(3).ContainedIn(graph::Pattern::Triangle()));
  EXPECT_FALSE(
      graph::Pattern::Triangle().ContainedIn(graph::Pattern::Path(3)));
  EXPECT_FALSE(
      graph::Pattern::Clique(4).ContainedIn(graph::Pattern::Diamond()));
  EXPECT_TRUE(
      graph::Pattern::Cycle(4).ContainedIn(graph::Pattern::Diamond()));
}

TEST(ContainmentTest, LabelsRestrictContainment) {
  graph::Pattern edge = graph::Pattern::Path(2);
  edge.SetLabel(0, 7);
  graph::Pattern tri = graph::Pattern::Triangle();
  EXPECT_FALSE(edge.ContainedIn(tri));  // no label-7 vertex in tri
  tri.SetLabel(1, 7);
  EXPECT_TRUE(edge.ContainedIn(tri));
}

TEST(MaximalPatternsTest, SubPatternsExcluded) {
  core::PatternTable pt;
  pt.Accumulate(1, graph::Pattern::Path(2), 10);
  pt.Accumulate(2, graph::Pattern::Path(3), 6);
  pt.Accumulate(3, graph::Pattern::Triangle(), 3);
  auto maximal = pt.MaximalPatterns();
  // Path(2) ⊆ Path(3) ⊆ Triangle; only the triangle is maximal.
  ASSERT_EQ(maximal.size(), 1u);
  EXPECT_EQ(maximal[0].code, 3u);
}

TEST(MaximalPatternsTest, InvalidEntriesIgnored) {
  core::PatternTable pt;
  pt.Accumulate(1, graph::Pattern::Path(3), 10);
  pt.Accumulate(2, graph::Pattern::Triangle(), 1);
  pt.InvalidateBelow(5);
  auto maximal = pt.MaximalPatterns();
  ASSERT_EQ(maximal.size(), 1u);
  EXPECT_EQ(maximal[0].code, 1u);
}

// ---- Explicit transfer placement -------------------------------------------

TEST(ExplicitTransferTest, SameCountsAsImplicit) {
  graph::Graph g = RandomLabeled(13);
  graph::Pattern q = graph::Pattern::SmQuery(1, 3);
  uint64_t expected = graph::CountEmbeddings(g, q);
  gpusim::Device device(TestParams());
  core::GammaOptions options;
  options.access.placement = core::GraphPlacement::kExplicitTransfer;
  core::GammaEngine engine(&device, &g, options);
  ASSERT_TRUE(engine.Prepare().ok());
  auto r = algos::MatchWoj(&engine, q);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().embeddings, expected);
  // Explicit transfer ships the frontier over the link every extension.
  EXPECT_GT(device.stats().explicit_h2d_bytes, 0u);
}

TEST(ExplicitTransferTest, ReshipsFrontierEveryExtension) {
  // Multi-extension workload with heavy frontier reuse: the hybrid policy
  // caches hot pages across extensions, while explicit staging re-ships
  // the adjacency lists each time (plus host gather work). The paper's
  // §II-B argument against explicit transfer is exactly this overlap.
  graph::Graph g = RandomLabeled(14);
  uint64_t hybrid_h2d = 0, explicit_h2d = 0;
  for (int mode = 0; mode < 2; ++mode) {
    gpusim::Device device(TestParams());
    core::GammaOptions options;
    options.access.placement =
        mode == 0 ? core::GraphPlacement::kHybridAdaptive
                  : core::GraphPlacement::kExplicitTransfer;
    core::GammaEngine engine(&device, &g, options);
    ASSERT_TRUE(engine.Prepare().ok());
    auto r = algos::CountKCliques(&engine, 4);
    ASSERT_TRUE(r.ok());
    (mode == 0 ? hybrid_h2d : explicit_h2d) =
        device.stats().explicit_h2d_bytes +
        device.stats().um_migrated_bytes;
  }
  EXPECT_GT(explicit_h2d, hybrid_h2d);
}

}  // namespace
}  // namespace gpm
