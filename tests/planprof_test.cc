// Plan-profiler tests: per-level actual rows/candidates and Q-error are
// checked against hand-computed ground truth on tiny fixture graphs for
// all four workload presets (k-clique, motif census, FPM, subgraph
// matching) plus a labeled SM query; the observation-only contract is
// enforced (a profiled run is bit-identical in cycles and every
// DeviceStats counter to an unprofiled one); and the gamma.planprof.v1
// document is parsed back and cross-checked.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "algos/fpm.h"
#include "algos/kclique.h"
#include "algos/motif.h"
#include "algos/subgraph_matching.h"
#include "core/gamma.h"
#include "core/plan_profiler.h"
#include "graph/csr.h"
#include "graph/pattern.h"
#include "gpusim/device.h"
#include "gpusim/resource_class.h"
#include "gpusim/sim_params.h"
#include "minijson.h"

namespace gpm::core {
namespace {

gpusim::SimParams TestParams() {
  gpusim::SimParams p;
  p.device_memory_bytes = 8 << 20;
  p.um_device_buffer_bytes = 1 << 20;
  return p;
}

// K4 on {0,1,2,3} plus a pendant vertex 4 attached to 0.
//   |V| = 5, |E| = 7, degrees = {4, 3, 3, 3, 1}.
//   Triangles: the 4 inside K4. Wedges (2-edge connected sets):
//   sum_v C(deg(v), 2) = 6 + 3*3 + 0 = 15.
graph::Graph PendantK4() {
  graph::Graph g = graph::Graph::FromEdges(
      5, {{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}, {0, 4}});
  g.EnsureEdgeIndex();
  return g;
}

// A labeled triangle query fixture: triangle {0,1,2} labeled (0,1,2) and
// a second label-1 vertex 3 adjacent to 0 and 2, closing a second
// labeled triangle (0,3,2).
//   N(0)={1,2,3}  N(1)={0,2}  N(2)={0,1,3}  N(3)={0,2}
graph::Graph LabeledTwoTriangles() {
  graph::Graph g = graph::Graph::FromEdges(
      4, {{0, 1}, {0, 2}, {1, 2}, {0, 3}, {2, 3}});
  g.SetLabels({0, 1, 2, 1});
  g.EnsureEdgeIndex();
  return g;
}

// The profiler's Q-error convention, applied by hand: both sides clamped
// at one row.
double HandQ(double est, double act) {
  const double e = std::max(est, 1.0);
  const double a = std::max(act, 1.0);
  return std::max(e / a, a / e);
}

// Engine with an attached profiler (and command-log recording, so the
// attribution path is exercised too).
struct ProfiledRun {
  gpusim::Device device;
  GammaEngine engine;

  explicit ProfiledRun(const graph::Graph& g, bool profile = true)
      : device(TestParams()),
        engine(&device, &g, [&] {
          GammaOptions o;
          o.plan_profile = profile;
          return o;
        }()) {
    device.critpath().set_enabled(true);
    EXPECT_TRUE(engine.Prepare().ok());
  }

  PlanProfiler* prof() { return engine.plan_profiler(); }
};

// --- Hand-computed actuals, preset by preset --------------------------------

TEST(PlanProfTest, KCliqueLevelsMatchHandCounts) {
  graph::Graph g = PendantK4();
  ProfiledRun run(g);
  auto r = algos::CountKCliques(&run.engine, 3);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().cliques, 4u);

  PlanProfiler* prof = run.prof();
  ASSERT_NE(prof, nullptr);
  ASSERT_TRUE(prof->has_run());
  const auto& segs = prof->segments();
  ASSERT_EQ(segs.size(), 3u);  // start, L1, L2

  // start: one row per vertex.
  EXPECT_EQ(segs[0].label, "start");
  EXPECT_EQ(segs[0].rows, 5u);

  // L1: candidates = every directed arc (sum of degrees = 2|E| = 14),
  // ascending filter keeps one orientation per edge.
  EXPECT_EQ(segs[1].label, "L1");
  EXPECT_EQ(segs[1].depth, 1);
  EXPECT_EQ(segs[1].input_rows, 5u);
  EXPECT_EQ(segs[1].candidates, 14u);
  EXPECT_EQ(segs[1].rows, 7u);
  EXPECT_DOUBLE_EQ(segs[1].selectivity, 7.0 / 14.0);
  EXPECT_EQ(segs[1].intersect_width, 1);

  // L2: per edge (u<v), |N(u) ∩ N(v)| — 2 for each of the 6 K4 edges,
  // 0 for the pendant edge — and the ascending filter keeps each
  // triangle once.
  EXPECT_EQ(segs[2].label, "L2");
  EXPECT_EQ(segs[2].input_rows, 7u);
  EXPECT_EQ(segs[2].candidates, 12u);
  EXPECT_EQ(segs[2].rows, 4u);
  EXPECT_EQ(segs[2].intersect_width, 2);

  // Q-error: the reported value must be exactly the hand-applied formula
  // over the plan's own estimate and the hand-counted actual.
  for (const PlanProfSegment& seg : segs) {
    if (seg.has_estimate) {
      EXPECT_EQ(seg.q_error,
                HandQ(seg.est_rows, static_cast<double>(seg.rows)))
          << seg.label;
      EXPECT_GE(seg.q_error, 1.0) << seg.label;
    } else {
      EXPECT_EQ(seg.q_error, 0.0) << seg.label;
    }
  }
}

TEST(PlanProfTest, MotifLevelsMatchHandCounts) {
  graph::Graph g = PendantK4();
  ProfiledRun run(g);
  auto r = algos::CountMotifs(&run.engine, 3);
  ASSERT_TRUE(r.ok());

  PlanProfiler* prof = run.prof();
  ASSERT_TRUE(prof->has_run());
  const auto& segs = prof->segments();
  ASSERT_EQ(segs.size(), 4u);  // start, L1, L2, aggregate

  EXPECT_EQ(segs[0].rows, 5u);

  // L1: union extension over position 0 — N(v0) — so candidates are the
  // 14 directed arcs, all injective.
  EXPECT_EQ(segs[1].candidates, 14u);
  EXPECT_EQ(segs[1].rows, 14u);
  EXPECT_TRUE(segs[1].union_extension);

  // L2: per ordered adjacent pair, |N(u) ∪ N(v)| (u and v are both in
  // the union and removed by injectivity). Unordered unions: 5 for the
  // four edges touching vertex 0, 4 for the three K4 edges among
  // {1,2,3}; doubled for orientation = 64 candidates, 64 - 2*14 = 36
  // connected ordered triples.
  EXPECT_EQ(segs[2].candidates, 64u);
  EXPECT_EQ(segs[2].rows, 36u);

  // aggregate: triangle + wedge = 2 pattern-table entries from the 36
  // ordered prefixes.
  EXPECT_EQ(segs[3].label, "aggregate");
  EXPECT_EQ(segs[3].input_rows, 36u);
  EXPECT_EQ(segs[3].rows, 2u);
}

TEST(PlanProfTest, FpmIterationsMatchHandCounts) {
  graph::Graph g = PendantK4();
  ProfiledRun run(g);
  auto r = algos::MineFrequentPatterns(
      &run.engine, {.max_edges = 2, .min_support = 2});
  ASSERT_TRUE(r.ok());

  PlanProfiler* prof = run.prof();
  ASSERT_TRUE(prof->has_run());
  const auto& segs = prof->segments();
  ASSERT_EQ(segs.size(), 3u);  // start, it1, it2

  // start: the edge table, one row per undirected edge.
  EXPECT_EQ(segs[0].label, "start");
  EXPECT_EQ(segs[0].rows, 7u);

  // it1: the single-edge pattern is frequent (support 7 >= 2), and the
  // extension materializes each connected 2-edge set once = 15 wedges.
  EXPECT_EQ(segs[1].label, "it1");
  EXPECT_EQ(segs[1].input_rows, 7u);
  EXPECT_EQ(segs[1].rows, 15u);
  EXPECT_GE(segs[1].candidates, 15u);

  // it2: final audit round, no extension.
  EXPECT_EQ(segs[2].label, "it2");
  EXPECT_EQ(segs[2].input_rows, 15u);
  EXPECT_EQ(segs[2].candidates, 0u);
  EXPECT_EQ(segs[2].rows, 15u);

  // FPM has no cardinality model, so no segment carries an estimate and
  // the summary's worst-Q is identically zero.
  for (const PlanProfSegment& seg : segs) {
    EXPECT_FALSE(seg.has_estimate);
    EXPECT_EQ(seg.q_error, 0.0);
  }
  EXPECT_EQ(prof->Summary().worst_q_error, 0.0);
}

TEST(PlanProfTest, LabeledSmQueryMatchesHandCounts) {
  graph::Graph g = LabeledTwoTriangles();
  graph::Pattern q = graph::Pattern::Triangle();
  q.SetLabel(0, 0);
  q.SetLabel(1, 1);
  q.SetLabel(2, 2);

  ProfiledRun run(g);
  auto r = algos::MatchWoj(&run.engine, q);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().embeddings, 2u);

  PlanProfiler* prof = run.prof();
  ASSERT_TRUE(prof->has_run());
  const auto& segs = prof->segments();
  ASSERT_EQ(segs.size(), 3u);

  // start: only vertex 0 carries label 0.
  EXPECT_EQ(segs[0].rows, 1u);

  // L1: candidates = N(0) = {1,2,3}; the label-1 filter keeps {1,3}.
  EXPECT_EQ(segs[1].candidates, 3u);
  EXPECT_EQ(segs[1].rows, 2u);

  // L2: |N(0) ∩ N(1)| = |{2}| and |N(0) ∩ N(3)| = |{2}|; vertex 2
  // carries label 2, so both survive.
  EXPECT_EQ(segs[2].input_rows, 2u);
  EXPECT_EQ(segs[2].candidates, 2u);
  EXPECT_EQ(segs[2].rows, 2u);

  // Strategy provenance: no per-level plan overrides here, so every
  // vertex level inherits the engine's options.
  for (std::size_t i = 1; i < segs.size(); ++i) {
    ASSERT_TRUE(segs[i].has_strategy);
    EXPECT_FALSE(segs[i].strategy.write_strategy_from_plan);
    EXPECT_FALSE(segs[i].strategy.pre_merge_from_plan);
    EXPECT_EQ(segs[i].strategy.write_strategy, "dynamic-alloc");
  }
}

// --- The observation-only contract ------------------------------------------

struct RunFingerprint {
  uint64_t count = 0;
  double now_cycles = 0;
  gpusim::DeviceStats stats;
};

RunFingerprint FingerprintKClique(const graph::Graph& g, bool profile) {
  ProfiledRun run(g, profile);
  auto r = algos::CountKCliques(&run.engine, 3);
  EXPECT_TRUE(r.ok());
  RunFingerprint fp;
  fp.count = r.ok() ? r.value().cliques : 0;
  fp.now_cycles = run.device.now_cycles();
  fp.stats = run.device.stats().Snapshot();
  return fp;
}

TEST(PlanProfTest, ProfilerOnOffIsBitIdentical) {
  graph::Graph g = PendantK4();
  RunFingerprint off = FingerprintKClique(g, /*profile=*/false);
  RunFingerprint on = FingerprintKClique(g, /*profile=*/true);

  EXPECT_EQ(off.count, on.count);
  // Bit-identical clock: no tolerance of any kind.
  EXPECT_EQ(off.now_cycles, on.now_cycles);
  // Every DeviceStats counter, enumerated so new counters cannot escape
  // the contract.
  for (const auto& f : gpusim::DeviceStats::Fields()) {
    EXPECT_EQ(off.stats.*(f.member), on.stats.*(f.member)) << f.name;
  }
}

// --- Attribution, imbalance, and the JSON document --------------------------

TEST(PlanProfTest, AttributionFoldsExactlyToSegmentCycles) {
  graph::Graph g = PendantK4();
  ProfiledRun run(g);
  auto r = algos::CountKCliques(&run.engine, 3);
  ASSERT_TRUE(r.ok());

  PlanProfiler* prof = run.prof();
  ASSERT_TRUE(prof->has_run());
  for (const PlanProfSegment& seg : prof->segments()) {
    ASSERT_TRUE(seg.attributed) << seg.label;
    double fold = 0.0;
    for (int c = 0; c < gpusim::kNumResourceClasses; ++c) {
      fold += seg.attribution[static_cast<std::size_t>(c)];
    }
    EXPECT_EQ(fold, seg.cycles) << seg.label;
    // The slot histogram is consistent: max/mean reproduce the stored
    // extremes and the imbalance ratio.
    if (seg.slot_max_cycles > 0) {
      EXPECT_EQ(seg.imbalance, seg.slot_max_cycles / seg.slot_mean_cycles)
          << seg.label;
      EXPECT_GE(seg.imbalance, 1.0) << seg.label;
    } else {
      EXPECT_EQ(seg.imbalance, 0.0) << seg.label;
    }
  }
}

TEST(PlanProfTest, JsonDocumentRoundTrips) {
  graph::Graph g = PendantK4();
  ProfiledRun run(g);
  auto r = algos::CountKCliques(&run.engine, 3);
  ASSERT_TRUE(r.ok());

  PlanProfiler* prof = run.prof();
  ASSERT_TRUE(prof->has_run());
  const std::string json = prof->ToJson();
  minijson::Value doc;
  ASSERT_TRUE(minijson::Parser(json).Parse(&doc)) << json;
  ASSERT_EQ(doc.type, minijson::Value::kObject);

  const minijson::Value* schema = doc.Find("schema");
  ASSERT_NE(schema, nullptr);
  EXPECT_EQ(schema->str, "gamma.planprof.v1");
  EXPECT_EQ(doc.Find("kind")->str, "subgraph-match");
  EXPECT_TRUE(doc.Find("finished")->boolean);
  EXPECT_TRUE(doc.Find("attribution_available")->boolean);

  const minijson::Value* levels = doc.Find("levels");
  ASSERT_NE(levels, nullptr);
  ASSERT_EQ(levels->array.size(), prof->segments().size());
  for (std::size_t i = 0; i < levels->array.size(); ++i) {
    const minijson::Value& level = levels->array[i];
    const PlanProfSegment& seg = prof->segments()[i];
    EXPECT_EQ(level.Find("label")->str, seg.label);
    EXPECT_EQ(level.Find("rows")->number,
              static_cast<double>(seg.rows));
    EXPECT_EQ(level.Find("q_error")->number, seg.q_error);
    const minijson::Value* slots = level.Find("slots");
    ASSERT_NE(slots, nullptr);
    EXPECT_EQ(slots->Find("busy_cycles")->array.size(),
              seg.slot_busy_cycles.size());
    EXPECT_EQ(slots->Find("imbalance")->number, seg.imbalance);
  }

  // The summary digest must agree with Summary().
  PlanProfSummary summary = prof->Summary();
  ASSERT_TRUE(summary.enabled);
  const minijson::Value* sum = doc.Find("summary");
  ASSERT_NE(sum, nullptr);
  EXPECT_EQ(sum->Find("worst_q_error")->number, summary.worst_q_error);
  EXPECT_EQ(sum->Find("imbalance")->number, summary.imbalance);
  ASSERT_EQ(sum->Find("levels")->array.size(), summary.levels.size());
}

TEST(PlanProfTest, SummaryPicksWorstEstimatedLevel) {
  graph::Graph g = PendantK4();
  ProfiledRun run(g);
  auto r = algos::CountKCliques(&run.engine, 3);
  ASSERT_TRUE(r.ok());

  PlanProfiler* prof = run.prof();
  PlanProfSummary summary = prof->Summary();
  ASSERT_TRUE(summary.enabled);
  double worst = 0.0;
  int worst_depth = -1;
  for (const PlanProfSegment& seg : prof->segments()) {
    if (seg.has_estimate && seg.q_error > worst) {
      worst = seg.q_error;
      worst_depth = seg.depth;
    }
  }
  EXPECT_EQ(summary.worst_q_error, worst);
  EXPECT_EQ(summary.worst_q_error_depth, worst_depth);
  ASSERT_EQ(summary.levels.size(), prof->segments().size());
}

// A fresh BeginRun discards the previous run: running two workloads
// back-to-back on one engine leaves only the second run's segments.
TEST(PlanProfTest, SecondRunReplacesFirst) {
  graph::Graph g = PendantK4();
  ProfiledRun run(g);
  ASSERT_TRUE(algos::CountKCliques(&run.engine, 3).ok());
  ASSERT_TRUE(algos::CountMotifs(&run.engine, 3).ok());

  PlanProfiler* prof = run.prof();
  ASSERT_TRUE(prof->has_run());
  ASSERT_EQ(prof->segments().size(), 4u);
  EXPECT_EQ(prof->segments().back().label, "aggregate");
}

}  // namespace
}  // namespace gpm::core
