// Property-style parameterized sweeps over random graphs: every GAMMA
// configuration must produce identical results, and the framework's counts
// must equal the reference oracle's on each sampled graph.
#include <gtest/gtest.h>

#include <tuple>

#include "algos/fpm.h"
#include "algos/kclique.h"
#include "algos/subgraph_matching.h"
#include "baselines/cpu_ref.h"
#include "baselines/presets.h"
#include "core/gamma.h"
#include "graph/generators.h"
#include "graph/isomorphism.h"
#include "graph/reorder.h"

namespace gpm {
namespace {

gpusim::SimParams TestParams() {
  gpusim::SimParams p;
  p.device_memory_bytes = 16 << 20;
  p.um_device_buffer_bytes = 2 << 20;
  return p;
}

graph::Graph SampleGraph(uint64_t seed) {
  Rng rng(seed);
  // Vary the family with the seed for diversity.
  graph::Graph g;
  switch (seed % 3) {
    case 0:
      g = graph::ErdosRenyi(50 + seed % 40, 200 + 10 * (seed % 13), &rng);
      break;
    case 1:
      g = graph::PowerLaw(60 + seed % 30, 250, 0.8, &rng);
      break;
    default:
      g = graph::Rmat(6, 220, &rng);
      break;
  }
  graph::AssignLabelsZipf(&g, 3, 0.4, &rng);
  g.EnsureEdgeIndex();
  return g;
}

// ---- Strategy-equivalence sweep -------------------------------------------

using StrategyParam =
    std::tuple<uint64_t /*seed*/, core::WriteStrategy, bool /*pre_merge*/>;

class StrategyEquivalence
    : public ::testing::TestWithParam<StrategyParam> {};

TEST_P(StrategyEquivalence, TriangleCountInvariant) {
  auto [seed, strategy, pre_merge] = GetParam();
  graph::Graph g = SampleGraph(seed);
  uint64_t expected =
      graph::CountInstances(g, graph::Pattern::Triangle());

  gpusim::Device device(TestParams());
  core::GammaOptions options;
  options.extension.write_strategy = strategy;
  options.extension.pre_merge = pre_merge;
  core::GammaEngine engine(&device, &g, options);
  ASSERT_TRUE(engine.Prepare().ok());
  auto r = algos::CountKCliques(&engine, 3);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().cliques, expected);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, StrategyEquivalence,
    ::testing::Combine(
        ::testing::Values(11, 22, 33),
        ::testing::Values(core::WriteStrategy::kNaiveTwoPass,
                          core::WriteStrategy::kPreAlloc,
                          core::WriteStrategy::kDynamicAlloc),
        ::testing::Bool()),
    [](const ::testing::TestParamInfo<StrategyParam>& info) {
      std::string name =
          core::WriteStrategyName(std::get<1>(info.param));
      std::replace(name.begin(), name.end(), '-', '_');
      return "seed" + std::to_string(std::get<0>(info.param)) + "_" +
             name + (std::get<2>(info.param) ? "_grouped" : "_plain");
    });

// ---- Access-mode equivalence sweep -----------------------------------------

using AccessParam = std::tuple<uint64_t, core::GraphPlacement>;

class AccessEquivalence : public ::testing::TestWithParam<AccessParam> {};

TEST_P(AccessEquivalence, SmCountInvariant) {
  auto [seed, placement] = GetParam();
  graph::Graph g = SampleGraph(seed);
  graph::Pattern q = graph::Pattern::SmQuery(1, g.num_labels());
  uint64_t expected = graph::CountEmbeddings(g, q);

  gpusim::Device device(TestParams());
  core::GammaOptions options;
  options.access.placement = placement;
  core::GammaEngine engine(&device, &g, options);
  ASSERT_TRUE(engine.Prepare().ok());
  auto r = algos::MatchWoj(&engine, q);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().embeddings, expected);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AccessEquivalence,
    ::testing::Combine(
        ::testing::Values(7, 14),
        ::testing::Values(core::GraphPlacement::kHybridAdaptive,
                          core::GraphPlacement::kUnifiedOnly,
                          core::GraphPlacement::kZeroCopyOnly,
                          core::GraphPlacement::kDeviceResident)),
    [](const ::testing::TestParamInfo<AccessParam>& info) {
      std::string name =
          core::GraphPlacementName(std::get<1>(info.param));
      std::replace(name.begin(), name.end(), '-', '_');
      return "seed" + std::to_string(std::get<0>(info.param)) + "_" +
             name;
    });

// ---- FPM threshold sweep ----------------------------------------------------

class FpmProperty
    : public ::testing::TestWithParam<std::tuple<uint64_t, uint64_t>> {};

TEST_P(FpmProperty, MatchesReferenceForThreshold) {
  auto [seed, min_support] = GetParam();
  graph::Graph g = SampleGraph(seed);
  gpusim::Device device(TestParams());
  core::GammaEngine engine(&device, &g, {});
  ASSERT_TRUE(engine.Prepare().ok());
  auto r = algos::MineFrequentPatterns(
      &engine,
      {.max_edges = 2, .min_support = min_support});
  ASSERT_TRUE(r.ok());
  auto ref = baselines::CpuFpmEmbeddingCentric(
      g, 2, min_support, baselines::CpuModel{});
  EXPECT_EQ(r.value().patterns.size(), ref.patterns.size());
  for (const auto& e : ref.patterns.entries()) {
    const core::PatternEntry* mine = r.value().patterns.Find(e.code);
    ASSERT_NE(mine, nullptr);
    EXPECT_EQ(mine->support, e.support);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FpmProperty,
    ::testing::Combine(::testing::Values(5, 6),
                       ::testing::Values(1, 3, 10)),
    [](const ::testing::TestParamInfo<std::tuple<uint64_t, uint64_t>>&
           info) {
      return "seed" + std::to_string(std::get<0>(info.param)) + "_sup" +
             std::to_string(std::get<1>(info.param));
    });

// ---- Invariants -------------------------------------------------------------

class InvariantTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(InvariantTest, CompressionPreservesEmbeddings) {
  graph::Graph g = SampleGraph(GetParam());
  // Run SM with and without table compression; counts must agree.
  graph::Pattern q = graph::Pattern::SmQuery(2, g.num_labels());
  uint64_t counts[2];
  for (int compress = 0; compress < 2; ++compress) {
    gpusim::Device device(TestParams());
    core::GammaOptions options;
    options.filter.compress = compress == 1;
    core::GammaEngine engine(&device, &g, options);
    ASSERT_TRUE(engine.Prepare().ok());
    auto r = algos::MatchWoj(&engine, q);
    ASSERT_TRUE(r.ok());
    counts[compress] = r.value().embeddings;
  }
  EXPECT_EQ(counts[0], counts[1]);
}

TEST_P(InvariantTest, CliqueMonotoneInK) {
  graph::Graph g = SampleGraph(GetParam());
  gpusim::Device device(TestParams());
  core::GammaEngine engine(&device, &g, {});
  ASSERT_TRUE(engine.Prepare().ok());
  // C(k) * something >= C(k+1): any (k+1)-clique contains k-cliques.
  auto c3 = algos::CountKCliques(&engine, 3);
  ASSERT_TRUE(c3.ok());
  gpusim::Device device2(TestParams());
  core::GammaEngine engine2(&device2, &g, {});
  ASSERT_TRUE(engine2.Prepare().ok());
  auto c4 = algos::CountKCliques(&engine2, 4);
  ASSERT_TRUE(c4.ok());
  if (c4.value().cliques > 0) {
    EXPECT_GE(c3.value().cliques, c4.value().cliques);
  }
}

TEST_P(InvariantTest, SimulatedTimeMonotone) {
  graph::Graph g = SampleGraph(GetParam());
  gpusim::Device device(TestParams());
  core::GammaEngine engine(&device, &g, {});
  ASSERT_TRUE(engine.Prepare().ok());
  double before = device.ElapsedSeconds();
  ASSERT_TRUE(algos::CountKCliques(&engine, 3).ok());
  EXPECT_GT(device.ElapsedSeconds(), before);
}

INSTANTIATE_TEST_SUITE_P(Sweep, InvariantTest,
                         ::testing::Values(101, 202, 303));

// ---- Cross-feature invariants ------------------------------------------------

class CrossFeatureTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CrossFeatureTest, ReorderingPreservesCounts) {
  graph::Graph g = SampleGraph(GetParam());
  uint64_t expected = graph::CountInstances(g, graph::Pattern::Triangle());
  for (graph::ReorderStrategy strategy :
       {graph::ReorderStrategy::kDegreeDescending,
        graph::ReorderStrategy::kBfs, graph::ReorderStrategy::kRandom,
        graph::ReorderStrategy::kDegeneracy}) {
    graph::Graph r = graph::Reorder(g, strategy, 5);
    gpusim::Device device(TestParams());
    core::GammaEngine engine(&device, &r, {});
    ASSERT_TRUE(engine.Prepare().ok());
    auto run = algos::CountKCliques(&engine, 3);
    ASSERT_TRUE(run.ok());
    EXPECT_EQ(run.value().cliques, expected)
        << graph::ReorderStrategyName(strategy);
  }
}

TEST_P(CrossFeatureTest, FpmInvariantAcrossWriteStrategies) {
  graph::Graph g = SampleGraph(GetParam());
  core::PatternTable reference;
  bool first = true;
  for (core::WriteStrategy strategy :
       {core::WriteStrategy::kDynamicAlloc,
        core::WriteStrategy::kNaiveTwoPass,
        core::WriteStrategy::kPreAlloc}) {
    gpusim::Device device(TestParams());
    core::GammaOptions options;
    options.extension.write_strategy = strategy;
    core::GammaEngine engine(&device, &g, options);
    ASSERT_TRUE(engine.Prepare().ok());
    auto r = algos::MineFrequentPatterns(
        &engine, {.max_edges = 2, .min_support = 3});
    ASSERT_TRUE(r.ok()) << core::WriteStrategyName(strategy);
    if (first) {
      reference = std::move(r.value().patterns);
      first = false;
      continue;
    }
    EXPECT_EQ(r.value().patterns.size(), reference.size());
    for (const auto& e : reference.entries()) {
      const core::PatternEntry* mine = r.value().patterns.Find(e.code);
      ASSERT_NE(mine, nullptr);
      EXPECT_EQ(mine->support, e.support);
    }
  }
}

TEST_P(CrossFeatureTest, AdaptiveIntersectionPreservesCounts) {
  graph::Graph g = SampleGraph(GetParam());
  uint64_t counts[2];
  for (int adaptive = 0; adaptive < 2; ++adaptive) {
    gpusim::Device device(TestParams());
    core::GammaOptions options;
    options.extension.adaptive_intersection = adaptive == 1;
    core::GammaEngine engine(&device, &g, options);
    ASSERT_TRUE(engine.Prepare().ok());
    auto r = algos::CountKCliques(&engine, 4);
    ASSERT_TRUE(r.ok());
    counts[adaptive] = r.value().cliques;
  }
  EXPECT_EQ(counts[0], counts[1]);
}

TEST_P(CrossFeatureTest, SymmetricTimesAutEqualsPlainEmbeddings) {
  graph::Graph g = SampleGraph(GetParam());
  for (const graph::Pattern& q :
       {graph::Pattern::Triangle(), graph::Pattern::Diamond()}) {
    gpusim::Device d1(TestParams()), d2(TestParams());
    core::GammaEngine e1(&d1, &g, {}), e2(&d2, &g, {});
    ASSERT_TRUE(e1.Prepare().ok());
    ASSERT_TRUE(e2.Prepare().ok());
    auto plain = algos::MatchWoj(&e1, q);
    auto sym = algos::MatchWojSymmetric(&e2, q);
    ASSERT_TRUE(plain.ok());
    ASSERT_TRUE(sym.ok());
    EXPECT_EQ(sym.value().instances *
                  static_cast<uint64_t>(q.CountAutomorphisms()),
              plain.value().embeddings)
        << q.DebugString();
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, CrossFeatureTest,
                         ::testing::Values(41, 42, 43));

}  // namespace
}  // namespace gpm
