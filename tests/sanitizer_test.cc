#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/random.h"

#include "algos/kclique.h"
#include "core/extension.h"
#include "core/gamma.h"
#include "graph/generators.h"
#include "gpusim/device.h"
#include "gpusim/profile.h"
#include "gpusim/sanitizer.h"
#include "gpusim/shadow.h"
#include "minijson.h"

namespace gpm::gpusim {
namespace {

SimParams SmallParams() {
  SimParams p;
  p.device_memory_bytes = 1 << 20;
  p.um_device_buffer_bytes = 64 << 10;
  return p;
}

Device* EnableAll(Device& device) {
  device.EnableSanitizer(Sanitizer::Options{});
  return &device;
}

// -- Shadow primitives ------------------------------------------------------

TEST(ByteIntervalSetTest, AddCoalescesAdjacentAndOverlapping) {
  ByteIntervalSet set;
  EXPECT_TRUE(set.empty());
  set.Add(0, 10);
  set.Add(20, 30);
  EXPECT_EQ(set.interval_count(), 2u);
  set.Add(10, 20);  // bridges the gap
  EXPECT_EQ(set.interval_count(), 1u);
  EXPECT_TRUE(set.Covers(0, 30));
  set.Add(25, 40);  // overlap extends
  EXPECT_EQ(set.interval_count(), 1u);
  EXPECT_TRUE(set.Covers(0, 40));
  EXPECT_FALSE(set.Covers(0, 41));
}

TEST(ByteIntervalSetTest, FirstGapFindsUncoveredByte) {
  ByteIntervalSet set;
  EXPECT_EQ(set.FirstGap(5, 10), 5u);
  set.Add(0, 8);
  EXPECT_EQ(set.FirstGap(5, 10), 8u);
  EXPECT_EQ(set.FirstGap(0, 8), 8u);  // fully covered: gap == end
  EXPECT_TRUE(set.Covers(2, 6));
  set.Clear();
  EXPECT_TRUE(set.empty());
}

TEST(ParseCheckListTest, DefaultsAndSubsets) {
  Sanitizer::Options o;
  o.memcheck = o.initcheck = o.racecheck = false;
  EXPECT_TRUE(Sanitizer::ParseCheckList("", &o));
  EXPECT_TRUE(o.memcheck && o.initcheck && o.racecheck);

  for (const char* all : {"1", "on", "true", "all"}) {
    Sanitizer::Options x;
    x.memcheck = x.initcheck = x.racecheck = false;
    EXPECT_TRUE(Sanitizer::ParseCheckList(all, &x)) << all;
    EXPECT_TRUE(x.memcheck && x.initcheck && x.racecheck) << all;
  }

  Sanitizer::Options sub;
  EXPECT_TRUE(Sanitizer::ParseCheckList("memcheck,racecheck", &sub));
  EXPECT_TRUE(sub.memcheck);
  EXPECT_FALSE(sub.initcheck);
  EXPECT_TRUE(sub.racecheck);
}

TEST(ParseCheckListTest, RejectsUnknownTokensAndEmptySelections) {
  Sanitizer::Options o;
  o.initcheck = false;
  EXPECT_FALSE(Sanitizer::ParseCheckList("memcheck,bogus", &o));
  EXPECT_FALSE(o.initcheck) << "failed parse must not touch the options";
  EXPECT_FALSE(Sanitizer::ParseCheckList(",", &o));
  EXPECT_FALSE(Sanitizer::ParseCheckList("off", &o));
}

// -- memcheck ---------------------------------------------------------------

TEST(SanitizerMemcheckTest, OutOfBoundsReadAttributedToKernel) {
  Device device(SmallParams());
  Sanitizer* san = EnableAll(device)->sanitizer();
  auto id = device.memory().Allocate(256);
  ASSERT_TRUE(id.ok());
  device.LaunchKernel(
      1,
      [&](WarpCtx& w, std::size_t) { w.DeviceWrite(id.value(), 0, 256); },
      "filler");
  device.LaunchKernel(
      1,
      [&](WarpCtx& w, std::size_t) { w.DeviceRead(id.value(), 200, 100); },
      "oob-reader");
  ASSERT_EQ(san->findings().size(), 1u);
  const Sanitizer::Finding& f = san->findings()[0];
  EXPECT_EQ(f.kind, Sanitizer::Kind::kOutOfBounds);
  EXPECT_EQ(f.kernel, "oob-reader");
  EXPECT_EQ(f.offset, 200u);
  EXPECT_EQ(f.bytes, 100u);
  device.memory().Free(id.value());
}

TEST(SanitizerMemcheckTest, UseAfterFreeFlagged) {
  Device device(SmallParams());
  Sanitizer* san = EnableAll(device)->sanitizer();
  auto id = device.memory().Allocate(128);
  ASSERT_TRUE(id.ok());
  device.memory().Free(id.value());
  device.LaunchKernel(
      1,
      [&](WarpCtx& w, std::size_t) { w.DeviceRead(id.value(), 0, 64); },
      "stale-reader");
  ASSERT_EQ(san->findings().size(), 1u);
  EXPECT_EQ(san->findings()[0].kind, Sanitizer::Kind::kInvalidAccess);
}

TEST(SanitizerMemcheckTest, DoubleFreeFlagged) {
  Device device(SmallParams());
  Sanitizer* san = EnableAll(device)->sanitizer();
  auto id = device.memory().Allocate(128);
  ASSERT_TRUE(id.ok());
  device.memory().Free(id.value());
  device.memory().Free(id.value());  // would GAMMA_CHECK-fail without -check
  ASSERT_EQ(san->findings().size(), 1u);
  EXPECT_EQ(san->findings()[0].kind, Sanitizer::Kind::kDoubleFree);
}

TEST(SanitizerMemcheckTest, LeakSweepFindsUnfreedAllocation) {
  Device device(SmallParams());
  auto baseline = device.memory().Allocate(64);  // pre-sanitizer: exempt
  ASSERT_TRUE(baseline.ok());
  Sanitizer* san = EnableAll(device)->sanitizer();
  auto leaked = device.memory().Allocate(512);
  ASSERT_TRUE(leaked.ok());
  san->LabelObject(leaked.value(), "leaky-buffer");
  san->FinalizeLeakCheck();
  san->FinalizeLeakCheck();  // idempotent
  ASSERT_EQ(san->findings().size(), 1u);
  const Sanitizer::Finding& f = san->findings()[0];
  EXPECT_EQ(f.kind, Sanitizer::Kind::kLeak);
  EXPECT_EQ(f.object, "leaky-buffer");
  EXPECT_EQ(f.bytes, 512u);
  device.memory().Free(leaked.value());
  device.memory().Free(baseline.value());
}

// -- initcheck --------------------------------------------------------------

TEST(SanitizerInitcheckTest, ReadBeforeWriteFlagged) {
  Device device(SmallParams());
  Sanitizer* san = EnableAll(device)->sanitizer();
  auto id = device.memory().Allocate(256);
  ASSERT_TRUE(id.ok());
  device.LaunchKernel(
      1,
      [&](WarpCtx& w, std::size_t) { w.DeviceRead(id.value(), 0, 64); },
      "early-reader");
  ASSERT_EQ(san->findings().size(), 1u);
  EXPECT_EQ(san->findings()[0].kind, Sanitizer::Kind::kUninitRead);
  EXPECT_EQ(san->findings()[0].kernel, "early-reader");
  device.memory().Free(id.value());
}

TEST(SanitizerInitcheckTest, WrittenBytesReadClean) {
  Device device(SmallParams());
  Sanitizer* san = EnableAll(device)->sanitizer();
  auto id = device.memory().Allocate(256);
  ASSERT_TRUE(id.ok());
  device.LaunchKernel(
      1,
      [&](WarpCtx& w, std::size_t) {
        w.DeviceWrite(id.value(), 0, 128);
        w.DeviceRead(id.value(), 0, 128);
      },
      "write-then-read");
  EXPECT_TRUE(san->findings().empty());
  device.memory().Free(id.value());
}

TEST(SanitizerInitcheckTest, PoisonedUnifiedRegionFlagged) {
  Device device(SmallParams());
  Sanitizer* san = EnableAll(device)->sanitizer();
  UnifiedMemory::RegionId region = device.unified().Register(4096);
  // Registered regions count as host-initialized; forget that so the read
  // below exercises the initcheck path for unified memory.
  san->TestOnlyPoison(Sanitizer::RegionHandle(region));
  device.LaunchKernel(
      1,
      [&](WarpCtx& w, std::size_t) { w.UnifiedRead(region, 0, 512); },
      "um-reader");
  ASSERT_EQ(san->findings().size(), 1u);
  EXPECT_EQ(san->findings()[0].kind, Sanitizer::Kind::kUninitRead);
  EXPECT_EQ(san->activity().unified_accesses, 1u);
}

// -- racecheck --------------------------------------------------------------

TEST(SanitizerRacecheckTest, MissingEventWaitFlagged) {
  Device device(SmallParams());
  Sanitizer* san = EnableAll(device)->sanitizer();
  auto id = device.memory().Allocate(1024);
  ASSERT_TRUE(id.ok());
  StreamId writer = device.CreateStream();
  StreamId reader = device.CreateStream();
  device.LaunchKernelAsync(
      writer, 1,
      [&](WarpCtx& w, std::size_t) { w.DeviceWrite(id.value(), 0, 1024); },
      "producer");
  // No event between the streams: the read races the write.
  device.LaunchKernelAsync(
      reader, 1,
      [&](WarpCtx& w, std::size_t) { w.DeviceRead(id.value(), 0, 512); },
      "consumer");
  ASSERT_EQ(san->findings().size(), 1u);
  const Sanitizer::Finding& f = san->findings()[0];
  EXPECT_EQ(f.kind, Sanitizer::Kind::kRace);
  EXPECT_EQ(f.kernel, "consumer");
  EXPECT_NE(f.message.find("producer"), std::string::npos) << f.message;
  device.memory().Free(id.value());
}

TEST(SanitizerRacecheckTest, EventWaitOrdersStreams) {
  Device device(SmallParams());
  Sanitizer* san = EnableAll(device)->sanitizer();
  auto id = device.memory().Allocate(1024);
  ASSERT_TRUE(id.ok());
  StreamId writer = device.CreateStream();
  StreamId reader = device.CreateStream();
  device.LaunchKernelAsync(
      writer, 1,
      [&](WarpCtx& w, std::size_t) { w.DeviceWrite(id.value(), 0, 1024); },
      "producer");
  Event done = device.RecordEvent(writer);
  device.WaitEvent(reader, done);
  device.LaunchKernelAsync(
      reader, 1,
      [&](WarpCtx& w, std::size_t) { w.DeviceRead(id.value(), 0, 512); },
      "consumer");
  EXPECT_TRUE(san->findings().empty()) << san->ReportText();
  EXPECT_EQ(san->activity().events_recorded, 1u);
  EXPECT_EQ(san->activity().event_waits, 1u);
  device.memory().Free(id.value());
}

TEST(SanitizerRacecheckTest, DisjointRangesDoNotRace) {
  Device device(SmallParams());
  Sanitizer* san = EnableAll(device)->sanitizer();
  auto id = device.memory().Allocate(1024);
  ASSERT_TRUE(id.ok());
  StreamId a = device.CreateStream();
  StreamId b = device.CreateStream();
  device.LaunchKernelAsync(
      a, 1,
      [&](WarpCtx& w, std::size_t) { w.DeviceWrite(id.value(), 0, 512); },
      "low-half");
  device.LaunchKernelAsync(
      b, 1,
      [&](WarpCtx& w, std::size_t) { w.DeviceWrite(id.value(), 512, 512); },
      "high-half");
  EXPECT_TRUE(san->findings().empty()) << san->ReportText();
  device.memory().Free(id.value());
}

// -- Reporting --------------------------------------------------------------

TEST(SanitizerReportTest, RepeatsDedupeIntoOccurrences) {
  Device device(SmallParams());
  Sanitizer* san = EnableAll(device)->sanitizer();
  auto id = device.memory().Allocate(64);
  ASSERT_TRUE(id.ok());
  for (int i = 0; i < 3; ++i) {
    device.LaunchKernel(
        1,
        [&](WarpCtx& w, std::size_t) { w.DeviceRead(id.value(), 64, 32); },
        "repeat-offender");
  }
  ASSERT_EQ(san->findings().size(), 1u);
  EXPECT_EQ(san->findings()[0].occurrences, 3u);
  EXPECT_EQ(san->total_occurrences(), 3u);
  device.memory().Free(id.value());
}

TEST(SanitizerReportTest, PhaseScopeAttribution) {
  Device device(SmallParams());
  Sanitizer* san = EnableAll(device)->sanitizer();
  auto id = device.memory().Allocate(64);
  ASSERT_TRUE(id.ok());
  {
    PhaseScope phase(&device, &device.profile(), "suspicious-phase");
    device.LaunchKernel(
        1,
        [&](WarpCtx& w, std::size_t) { w.DeviceRead(id.value(), 64, 8); },
        "oob");
  }
  ASSERT_EQ(san->findings().size(), 1u);
  EXPECT_EQ(san->findings()[0].phase, "suspicious-phase");
  device.memory().Free(id.value());
}

TEST(SanitizerReportTest, JsonMatchesSchema) {
  Device device(SmallParams());
  Sanitizer* san = EnableAll(device)->sanitizer();
  auto id = device.memory().Allocate(64);
  ASSERT_TRUE(id.ok());
  device.LaunchKernel(
      1, [&](WarpCtx& w, std::size_t) { w.DeviceRead(id.value(), 64, 8); },
      "oob");
  std::string json = san->ToJson();
  minijson::Value doc;
  ASSERT_TRUE(minijson::Parse(json, &doc)) << json;
  EXPECT_EQ(doc.Find("schema")->str, "gamma.check.v1");
  EXPECT_TRUE(doc.Find("checkers")->Find("memcheck")->boolean);
  const minijson::Value* summary = doc.Find("summary");
  ASSERT_NE(summary, nullptr);
  EXPECT_DOUBLE_EQ(summary->Find("total")->number, 1.0);
  EXPECT_DOUBLE_EQ(summary->Find("memcheck")->number, 1.0);
  EXPECT_DOUBLE_EQ(summary->Find("initcheck")->number, 0.0);
  const minijson::Value* findings = doc.Find("findings");
  ASSERT_NE(findings, nullptr);
  ASSERT_EQ(findings->array.size(), 1u);
  const minijson::Value& f = findings->array[0];
  EXPECT_EQ(f.Find("kind")->str, "out-of-bounds");
  EXPECT_EQ(f.Find("checker")->str, "memcheck");
  EXPECT_EQ(f.Find("kernel")->str, "oob");
  EXPECT_DOUBLE_EQ(f.Find("offset")->number, 64.0);
  ASSERT_NE(doc.Find("checked"), nullptr);
  EXPECT_GE(doc.Find("checked")->Find("device_accesses")->number, 1.0);
  device.memory().Free(id.value());
}

TEST(SanitizerReportTest, ReportTextListsFindings) {
  Device device(SmallParams());
  Sanitizer* san = EnableAll(device)->sanitizer();
  auto id = device.memory().Allocate(64);
  ASSERT_TRUE(id.ok());
  device.LaunchKernel(
      1, [&](WarpCtx& w, std::size_t) { w.DeviceRead(id.value(), 64, 8); },
      "oob");
  std::string text = san->ReportText();
  EXPECT_NE(text.find("out-of-bounds"), std::string::npos) << text;
  EXPECT_NE(text.find("memcheck"), std::string::npos) << text;
  EXPECT_NE(text.find("oob"), std::string::npos) << text;
  device.memory().Free(id.value());
}

TEST(SanitizerReportTest, MaxFindingsCapCountsDropped) {
  Device device(SmallParams());
  Sanitizer::Options opts;
  opts.max_findings = 2;
  device.EnableSanitizer(opts);
  Sanitizer* san = device.sanitizer();
  auto id = device.memory().Allocate(64);
  ASSERT_TRUE(id.ok());
  for (int i = 0; i < 4; ++i) {
    // Distinct kernel names => distinct findings, not dedupe.
    std::string name = "oob-" + std::to_string(i);
    device.LaunchKernel(
        1, [&](WarpCtx& w, std::size_t) { w.DeviceRead(id.value(), 64, 8); },
        name.c_str());
  }
  EXPECT_EQ(san->findings().size(), 2u);
  EXPECT_EQ(san->dropped_findings(), 2u);
  device.memory().Free(id.value());
}

}  // namespace
}  // namespace gpm::gpusim

namespace gpm::core {
namespace {

gpusim::SimParams EngineParams() {
  gpusim::SimParams p;
  p.device_memory_bytes = 8 << 20;
  p.um_device_buffer_bytes = 1 << 20;
  return p;
}

struct RunOutcome {
  double cycles = 0;
  gpusim::DeviceStats stats;
};

// One engine workload exercising kernels, the pool, flushes, and (with
// streams >= 2) the double-buffered pipeline.
RunOutcome RunWorkload(bool sanitize, std::size_t streams) {
  Rng rng(7);
  graph::Graph g = graph::ErdosRenyi(256, 2048, &rng);
  g.EnsureEdgeIndex();
  gpusim::Device device(EngineParams());
  if (sanitize) device.EnableSanitizer(gpusim::Sanitizer::Options{});
  GammaOptions options;
  options.extension.num_streams = streams;
  options.extension.chunk_rows = 64;
  {
    GammaEngine engine(&device, &g, options);
    EXPECT_TRUE(engine.Prepare().ok());
    auto r = algos::CountKCliques(&engine, 4);
    EXPECT_TRUE(r.ok());
  }
  if (sanitize) {
    device.sanitizer()->FinalizeLeakCheck();
    EXPECT_TRUE(device.sanitizer()->findings().empty())
        << device.sanitizer()->ReportText();
  }
  return {device.now_cycles(), device.stats().Snapshot()};
}

// The tentpole's zero-perturbation guarantee: enabling every checker must
// not move a single cycle or hardware counter.
TEST(SanitizerOverheadTest, CyclesAndStatsBitIdentical) {
  for (std::size_t streams : {std::size_t{1}, std::size_t{2}}) {
    RunOutcome off = RunWorkload(false, streams);
    RunOutcome on = RunWorkload(true, streams);
    EXPECT_EQ(off.cycles, on.cycles) << "streams=" << streams;
    for (const auto& field : gpusim::DeviceStats::Fields()) {
      EXPECT_EQ(off.stats.*(field.member), on.stats.*(field.member))
          << field.name << " streams=" << streams;
    }
  }
}

// The real double-buffered extension pipeline is finding-clean: every
// buffer-half reuse is guarded by its flush event.
TEST(SanitizerPipelineTest, DoubleBufferedPipelineClean) {
  graph::Graph g = graph::Graph::FromEdges(
      5, {{0, 1}, {0, 2}, {1, 2}, {1, 3}, {2, 3}, {3, 4}});
  g.EnsureEdgeIndex();
  gpusim::Device device(EngineParams());
  device.EnableSanitizer(gpusim::Sanitizer::Options{});
  GammaOptions options;
  options.extension.num_streams = 2;
  // Several chunks per extension (one row per task, two rows per chunk),
  // so later chunks genuinely reuse flushed buffer halves.
  options.extension.chunk_rows = 2;
  options.extension.rows_per_warp = 1;
  GammaEngine engine(&device, &g, options);
  ASSERT_TRUE(engine.Prepare().ok());
  auto t = engine.InitVertexTable();
  ASSERT_TRUE(t.ok());
  VertexExtensionSpec spec;
  ASSERT_TRUE(engine.VertexExtension(t.value().get(), spec).ok());
  ASSERT_TRUE(engine.VertexExtension(t.value().get(), spec).ok());
  EXPECT_TRUE(device.sanitizer()->findings().empty())
      << device.sanitizer()->ReportText();
}

// Deliberately break the pipeline: skipping the flush_done wait lets the
// compute stream write a pool half whose flush is still draining on the
// copy stream. racecheck must catch exactly this.
TEST(SanitizerPipelineTest, SkippedBufferGuardRaces) {
  graph::Graph g = graph::Graph::FromEdges(
      5, {{0, 1}, {0, 2}, {1, 2}, {1, 3}, {2, 3}, {3, 4}});
  g.EnsureEdgeIndex();
  gpusim::Device device(EngineParams());
  device.EnableSanitizer(gpusim::Sanitizer::Options{});
  GammaOptions options;
  options.extension.num_streams = 2;
  options.extension.chunk_rows = 2;
  options.extension.rows_per_warp = 1;
  options.extension.unsafe_skip_buffer_guard = true;
  GammaEngine engine(&device, &g, options);
  ASSERT_TRUE(engine.Prepare().ok());
  auto t = engine.InitVertexTable();
  ASSERT_TRUE(t.ok());
  VertexExtensionSpec spec;
  ASSERT_TRUE(engine.VertexExtension(t.value().get(), spec).ok());

  gpusim::Sanitizer* san = device.sanitizer();
  ASSERT_FALSE(san->findings().empty());
  bool saw_pool_race = false;
  for (const auto& f : san->findings()) {
    EXPECT_EQ(f.kind, gpusim::Sanitizer::Kind::kRace) << san->ReportText();
    if (f.object == "memory-pool") saw_pool_race = true;
  }
  EXPECT_TRUE(saw_pool_race) << san->ReportText();
}

}  // namespace
}  // namespace gpm::core
