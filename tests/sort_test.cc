#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.h"
#include "core/multimerge_sort.h"

namespace gpm::core {
namespace {

gpusim::SimParams TinyDevice() {
  gpusim::SimParams p;
  p.device_memory_bytes = 256 << 10;   // small device => many segments
  p.um_device_buffer_bytes = 32 << 10;
  return p;
}

std::vector<uint64_t> RandomKeys(std::size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint64_t> keys(n);
  for (auto& k : keys) k = rng.Next();
  return keys;
}

TEST(MatchedIndexTest, Definition51Cases) {
  std::vector<uint64_t> s{10, 20, 20, 30};
  EXPECT_EQ(MatchedIndex(s, 5), 0u);    // x <= s[0]
  EXPECT_EQ(MatchedIndex(s, 10), 0u);
  EXPECT_EQ(MatchedIndex(s, 15), 1u);   // s[0] < x <= s[1]
  EXPECT_EQ(MatchedIndex(s, 20), 1u);
  EXPECT_EQ(MatchedIndex(s, 25), 3u);
  EXPECT_EQ(MatchedIndex(s, 31), 4u);   // x > all
}

class SortMethodTest : public ::testing::TestWithParam<SortMethod> {};

TEST_P(SortMethodTest, SortsRandomKeys) {
  gpusim::Device device(TinyDevice());
  auto keys = RandomKeys(50000, 7);
  auto expected = keys;
  std::sort(expected.begin(), expected.end());
  SortOptions options;
  options.method = GetParam();
  auto r = SortKeys(&device, &keys, options);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(keys, expected);
  EXPECT_EQ(r.value().keys, 50000u);
}

TEST_P(SortMethodTest, SortsWithDuplicates) {
  gpusim::Device device(TinyDevice());
  Rng rng(11);
  std::vector<uint64_t> keys(20000);
  for (auto& k : keys) k = rng.NextBounded(50);  // heavy duplication
  auto expected = keys;
  std::sort(expected.begin(), expected.end());
  SortOptions options;
  options.method = GetParam();
  options.p_size = 512;
  ASSERT_TRUE(SortKeys(&device, &keys, options).ok());
  EXPECT_EQ(keys, expected);
}

TEST_P(SortMethodTest, HandlesTinyInputs) {
  gpusim::Device device(TinyDevice());
  SortOptions options;
  options.method = GetParam();
  std::vector<uint64_t> empty;
  ASSERT_TRUE(SortKeys(&device, &empty, options).ok());
  std::vector<uint64_t> one{42};
  ASSERT_TRUE(SortKeys(&device, &one, options).ok());
  EXPECT_EQ(one, (std::vector<uint64_t>{42}));
  std::vector<uint64_t> two{9, 3};
  ASSERT_TRUE(SortKeys(&device, &two, options).ok());
  EXPECT_EQ(two, (std::vector<uint64_t>{3, 9}));
}

TEST_P(SortMethodTest, AlreadySortedStaysSorted) {
  gpusim::Device device(TinyDevice());
  std::vector<uint64_t> keys(30000);
  for (std::size_t i = 0; i < keys.size(); ++i) keys[i] = i;
  auto expected = keys;
  SortOptions options;
  options.method = GetParam();
  ASSERT_TRUE(SortKeys(&device, &keys, options).ok());
  EXPECT_EQ(keys, expected);
}

INSTANTIATE_TEST_SUITE_P(
    AllMethods, SortMethodTest,
    ::testing::Values(SortMethod::kGammaMultiMerge, SortMethod::kNaiveMerge,
                      SortMethod::kXtr2Sort, SortMethod::kCpuSort),
    [](const ::testing::TestParamInfo<SortMethod>& info) {
      std::string name = SortMethodName(info.param);
      std::replace(name.begin(), name.end(), '-', '_');
      return name;
    });

TEST(SortCostTest, OutOfCoreUsesMultipleSegments) {
  gpusim::Device device(TinyDevice());
  auto keys = RandomKeys(100000, 13);  // 800 KB >> device
  SortOptions options;
  options.p_size = 4096;  // below the segment size => real checkpoints
  auto r = SortKeys(&device, &keys, options);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r.value().segments, 1u);
  EXPECT_GT(r.value().subtasks, 1u);
}

TEST(SortCostTest, GammaFasterThanNaive) {
  auto run = [](SortMethod m) {
    gpusim::Device device(TinyDevice());
    auto keys = RandomKeys(200000, 17);
    SortOptions options;
    options.method = m;
    EXPECT_TRUE(SortKeys(&device, &keys, options).ok());
    return device.now_cycles();
  };
  double gamma_cycles = run(SortMethod::kGammaMultiMerge);
  double naive_cycles = run(SortMethod::kNaiveMerge);
  double cpu_cycles = run(SortMethod::kCpuSort);
  EXPECT_LT(gamma_cycles, naive_cycles);
  EXPECT_LT(gamma_cycles, cpu_cycles);
}

TEST(SortCostTest, InCoreOnlyFailsWhenTooLarge) {
  gpusim::Device device(TinyDevice());
  auto keys = RandomKeys(100000, 19);  // 800 KB
  SortOptions options;
  options.in_core_only = true;
  auto r = SortKeys(&device, &keys, options);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kDeviceOutOfMemory);
}

TEST(SortCostTest, InCoreOnlySucceedsWhenItFits) {
  gpusim::Device device(TinyDevice());
  auto keys = RandomKeys(1000, 23);
  auto expected = keys;
  std::sort(expected.begin(), expected.end());
  SortOptions options;
  options.in_core_only = true;
  ASSERT_TRUE(SortKeys(&device, &keys, options).ok());
  EXPECT_EQ(keys, expected);
}

}  // namespace
}  // namespace gpm::core
