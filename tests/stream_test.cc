// Tests for the stream/event execution model: deterministic replay of an
// async command sequence, event ordering semantics, PCIe-link contention
// between concurrent copy streams, sync-wrapper equivalence with the
// historical single-clock model, and an end-to-end regression that the
// double-buffered extension pipeline never runs slower than the
// synchronous path while producing identical results.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <vector>

#include "baselines/presets.h"
#include "baselines/systems.h"
#include "core/multimerge_sort.h"
#include "graph/datasets.h"
#include "gpusim/device.h"
#include "gpusim/stream.h"

namespace gpm {
namespace {

using gpusim::Device;
using gpusim::Event;
using gpusim::SimParams;
using gpusim::StreamId;
using gpusim::WarpCtx;

SimParams SmallParams() {
  SimParams p;
  p.device_memory_bytes = 4 << 20;
  p.um_device_buffer_bytes = 64 << 10;
  return p;
}

TEST(StreamSetTest, DefaultStreamAlwaysExists) {
  gpusim::StreamSet streams;
  EXPECT_EQ(streams.num_streams(), 1);
  EXPECT_TRUE(streams.valid(gpusim::kDefaultStream));
  EXPECT_FALSE(streams.valid(1));
  EXPECT_DOUBLE_EQ(streams.now_cycles(), 0.0);
}

TEST(StreamSetTest, NewStreamsStartAtTheJoinPoint) {
  gpusim::StreamSet streams;
  streams.set_cycles(gpusim::kDefaultStream, 500.0);
  StreamId s = streams.CreateStream();
  // A stream created "now" must not schedule work in the simulated past.
  EXPECT_DOUBLE_EQ(streams.cycles(s), 500.0);
  EXPECT_DOUBLE_EQ(streams.now_cycles(), 500.0);
}

TEST(StreamSetTest, WaitOnUnrecordedEventIsANoOp) {
  gpusim::StreamSet streams;
  StreamId s = streams.CreateStream();
  streams.set_cycles(s, 100.0);
  Event never;
  EXPECT_FALSE(never.valid());
  streams.Wait(s, never);
  EXPECT_DOUBLE_EQ(streams.cycles(s), 100.0);
}

TEST(StreamSetTest, RecordThenWaitOrdersStreams) {
  gpusim::StreamSet streams;
  StreamId a = streams.CreateStream();
  StreamId b = streams.CreateStream();
  streams.set_cycles(a, 1000.0);
  Event e = streams.Record(a);
  ASSERT_TRUE(e.valid());
  EXPECT_DOUBLE_EQ(e.cycles(), 1000.0);

  // Waiting pulls the lagging stream forward...
  streams.set_cycles(b, 200.0);
  streams.Wait(b, e);
  EXPECT_DOUBLE_EQ(streams.cycles(b), 1000.0);
  // ...but never rewinds a stream already past the event.
  streams.set_cycles(b, 5000.0);
  streams.Wait(b, e);
  EXPECT_DOUBLE_EQ(streams.cycles(b), 5000.0);

  // The event is a snapshot: advancing the recording stream afterwards
  // does not move the timestamp.
  streams.set_cycles(a, 9000.0);
  EXPECT_DOUBLE_EQ(e.cycles(), 1000.0);
}

TEST(StreamSetTest, SynchronizeJoinsEveryStream) {
  gpusim::StreamSet streams;
  StreamId a = streams.CreateStream();
  StreamId b = streams.CreateStream();
  streams.set_cycles(a, 300.0);
  streams.set_cycles(b, 700.0);
  EXPECT_DOUBLE_EQ(streams.Synchronize(), 700.0);
  // Every clock lands on the join: later default-stream work starts after
  // everything submitted before the synchronize.
  EXPECT_DOUBLE_EQ(streams.cycles(gpusim::kDefaultStream), 700.0);
  EXPECT_DOUBLE_EQ(streams.cycles(a), 700.0);
  EXPECT_DOUBLE_EQ(streams.cycles(b), 700.0);
}

TEST(StreamTest, ConcurrentCopyStreamsContendForTheLink) {
  SimParams params = SmallParams();
  Device device(params);
  StreamId a = device.CreateStream();
  StreamId b = device.CreateStream();

  const std::size_t bytes = 1 << 20;
  const double wire = static_cast<double>(bytes) / params.pcie_bytes_per_cycle;
  const double lat = params.pcie_latency_cycles;

  double ca = device.CopyHostToDeviceAsync(a, bytes);
  double cb = device.CopyHostToDeviceAsync(b, bytes);
  // Stream a gets the link first: latency + wire time.
  EXPECT_DOUBLE_EQ(ca, lat + wire);
  // Stream b is ready at the same simulated instant, but the shared link
  // is busy until a's transfer drains — its copy takes strictly longer
  // instead of magically using the full bandwidth in parallel.
  EXPECT_GT(cb, ca);
  EXPECT_DOUBLE_EQ(device.stream_cycles(b), lat + 2 * wire);
  // Two serialized transfers: the device-wide clock covers both, not the
  // double-counted sum.
  EXPECT_DOUBLE_EQ(device.Synchronize(), lat + 2 * wire);
  EXPECT_DOUBLE_EQ(device.streams().link_busy_cycles(), 2 * wire);
}

TEST(StreamTest, KernelAndCopyOnDistinctStreamsOverlapCompute) {
  SimParams params = SmallParams();
  Device device(params);
  StreamId compute = device.CreateStream();
  StreamId copy = device.CreateStream();

  // A pure-compute kernel generates no link traffic, so a concurrent copy
  // on another stream proceeds under it: total elapsed time is the max of
  // the legs, not the sum.
  double kc = device.LaunchKernelAsync(compute, 1,
                                       [](WarpCtx& w, std::size_t) {
                                         w.ChargeCompute(50000);
                                       });
  double cc = device.CopyHostToDeviceAsync(copy, 4096);
  EXPECT_DOUBLE_EQ(device.Synchronize(), std::max(kc, cc));
}

TEST(StreamTest, SyncWrappersMatchSingleStreamModel) {
  // The same command sequence issued through the sync wrappers and through
  // the async APIs on the default stream must produce identical clocks —
  // the wrappers are thin aliases, not a second cost model.
  SimParams params = SmallParams();
  auto run_compute = [](WarpCtx& w, std::size_t) {
    w.ChargeCompute(123);
    w.DeviceRead(256);
  };
  Device sync_device(params);
  sync_device.CopyHostToDevice(10000);
  sync_device.LaunchKernel(7, run_compute);
  sync_device.CopyDeviceToHost(5000);

  Device async_device(params);
  async_device.CopyHostToDeviceAsync(gpusim::kDefaultStream, 10000);
  async_device.LaunchKernelAsync(gpusim::kDefaultStream, 7, run_compute);
  async_device.CopyDeviceToHostAsync(gpusim::kDefaultStream, 5000);

  EXPECT_DOUBLE_EQ(sync_device.now_cycles(), async_device.now_cycles());
}

TEST(StreamTest, AsyncReplayIsDeterministic) {
  // The link is granted in submission order, so replaying an identical
  // async command sequence yields bit-identical clocks and link state.
  auto run = [](Device* device) {
    StreamId a = device->CreateStream();
    StreamId b = device->CreateStream();
    device->CopyHostToDeviceAsync(a, 100000);
    device->LaunchKernelAsync(b, 8, [](WarpCtx& w, std::size_t t) {
      w.ChargeCompute(100.0 * static_cast<double>(t + 1));
      w.ZeroCopyRead(512);
    });
    device->WaitEvent(b, device->RecordEvent(a));
    device->CopyDeviceToHostAsync(b, 40000);
    device->Synchronize();
  };
  SimParams params = SmallParams();
  Device first(params);
  Device second(params);
  run(&first);
  run(&second);
  EXPECT_DOUBLE_EQ(first.now_cycles(), second.now_cycles());
  EXPECT_DOUBLE_EQ(first.streams().link_busy_cycles(),
                   second.streams().link_busy_cycles());
  EXPECT_EQ(first.stats().kernel_launches, second.stats().kernel_launches);
}

TEST(StreamTest, ResetClockRewindsStreamsAndLink) {
  Device device(SmallParams());
  StreamId s = device.CreateStream();
  device.CopyHostToDeviceAsync(s, 1 << 16);
  device.LaunchKernel(2, [](WarpCtx& w, std::size_t) {
    w.ZeroCopyRead(4096);
  });
  ASSERT_GT(device.now_cycles(), 0.0);
  ASSERT_GT(device.streams().link_busy_cycles(), 0.0);

  device.ResetClock();
  EXPECT_DOUBLE_EQ(device.now_cycles(), 0.0);
  EXPECT_DOUBLE_EQ(device.stream_cycles(gpusim::kDefaultStream), 0.0);
  EXPECT_DOUBLE_EQ(device.stream_cycles(s), 0.0);
  EXPECT_DOUBLE_EQ(device.streams().link_busy_cycles(), 0.0);
  // The rewind keeps the link genuinely free: the next copy costs exactly
  // what a first-ever copy costs, with no ghost busy window.
  const SimParams& p = device.params();
  double c = device.CopyHostToDevice(1 << 16);
  EXPECT_DOUBLE_EQ(c, p.pcie_latency_cycles +
                          static_cast<double>(1 << 16) /
                              p.pcie_bytes_per_cycle);
}

TEST(StreamTest, SegmentSortOverlapIsNoSlowerAndSortsCorrectly) {
  auto make_keys = []() {
    std::vector<uint64_t> keys;
    keys.reserve(40000);
    uint64_t x = 88172645463325252ull;
    for (int i = 0; i < 40000; ++i) {
      x ^= x << 13;
      x ^= x >> 7;
      x ^= x << 17;
      keys.push_back(x);
    }
    return keys;
  };
  core::SortOptions options;
  options.segment_bytes = 64 << 10;  // force several segments

  Device sync_device(SmallParams());
  std::vector<uint64_t> sync_keys = make_keys();
  auto sync = core::SortKeys(&sync_device, &sync_keys, options);
  ASSERT_TRUE(sync.ok()) << sync.status().ToString();

  options.num_streams = 2;
  Device async_device(SmallParams());
  std::vector<uint64_t> async_keys = make_keys();
  auto async = core::SortKeys(&async_device, &async_keys, options);
  ASSERT_TRUE(async.ok()) << async.status().ToString();

  EXPECT_EQ(sync_keys, async_keys);
  EXPECT_TRUE(std::is_sorted(async_keys.begin(), async_keys.end()));
  EXPECT_EQ(sync.value().segments, async.value().segments);
  EXPECT_GT(sync.value().segments, 1u);
  // Overlapping segment uploads with sort kernels can only help: the async
  // phase never takes longer than the serial per-op sum.
  EXPECT_LE(async_device.now_cycles(), sync_device.now_cycles());
}

TEST(StreamTest, DoubleBufferedExtensionMatchesSyncAndIsNoSlower) {
  // End-to-end regression on a Fig. 10-style memory workload: 4-clique
  // counting with small chunks. The double-buffered pipeline must count
  // exactly the same cliques and finish no later than the synchronous
  // path (strictly earlier whenever there is more than one chunk to
  // overlap).
  graph::Graph g = graph::MakeDataset("ER");
  g.EnsureEdgeIndex();

  auto options_with = [](std::size_t streams) {
    core::GammaOptions options = baselines::GammaDefaultOptions();
    options.extension.pool_bytes = 2ull << 20;  // fits the 4 MiB device
    options.extension.chunk_rows = 1024;
    options.extension.num_streams = streams;
    options.aggregation.sort.num_streams = streams;
    return options;
  };

  Device sync_device(SmallParams());
  auto sync = baselines::GammaKClique(&sync_device, g, 4, options_with(1));
  ASSERT_TRUE(sync.ok()) << sync.status().ToString();

  Device async_device(SmallParams());
  auto async = baselines::GammaKClique(&async_device, g, 4, options_with(2));
  ASSERT_TRUE(async.ok()) << async.status().ToString();

  EXPECT_EQ(sync.value().count, async.value().count);
  EXPECT_GT(async.value().count, 0u);
  EXPECT_LE(async_device.now_cycles(), sync_device.now_cycles());
  EXPECT_LT(async_device.now_cycles(), sync_device.now_cycles())
      << "double-buffered pipeline found nothing to overlap";
}

}  // namespace
}  // namespace gpm
