#include <gtest/gtest.h>

#include <set>

#include "algos/subgraph_matching.h"
#include "core/symmetry.h"
#include "graph/generators.h"
#include "graph/isomorphism.h"

namespace gpm::core {
namespace {

gpusim::SimParams TestParams() {
  gpusim::SimParams p;
  p.device_memory_bytes = 8 << 20;
  p.um_device_buffer_bytes = 512 << 10;
  return p;
}

TEST(BreakSymmetryTest, TriangleGivesTotalOrder) {
  graph::Pattern tri = graph::Pattern::Triangle();
  std::vector<int> order = tri.DefaultMatchingOrder();
  auto restrictions = BreakSymmetry(tri, order);
  // S3 needs exactly the 3 pairwise restrictions (or an equivalent set
  // implying a total order); at minimum |restrictions| >= 2.
  EXPECT_GE(restrictions.size(), 2u);
  for (const auto& r : restrictions) {
    EXPECT_NE(r.smaller_pos, r.larger_pos);
  }
}

TEST(BreakSymmetryTest, AsymmetricQueryNeedsNone) {
  graph::Pattern q = graph::Pattern::Triangle();
  q.SetLabel(0, 0);
  q.SetLabel(1, 1);
  q.SetLabel(2, 2);  // labels kill all automorphisms
  auto restrictions = BreakSymmetry(q, q.DefaultMatchingOrder());
  EXPECT_TRUE(restrictions.empty())
      << RestrictionsDebugString(restrictions);
}

TEST(BreakSymmetryTest, DebugStringFormat) {
  auto restrictions = BreakSymmetry(graph::Pattern::Triangle(),
                                    {0, 1, 2});
  std::string s = RestrictionsDebugString(restrictions);
  EXPECT_EQ(s.front(), '[');
  EXPECT_EQ(s.back(), ']');
  EXPECT_NE(s.find('<'), std::string::npos);
}

// The decisive property: restricted enumeration yields exactly one row per
// instance, i.e. restricted_count * |Aut| == unrestricted embeddings.
class SymmetricMatchTest : public ::testing::TestWithParam<int> {};

TEST_P(SymmetricMatchTest, OneRowPerInstance) {
  Rng rng(100 + GetParam());
  graph::Graph g = graph::ErdosRenyi(50, 220, &rng);
  graph::AssignLabelsZipf(&g, 2, 0.2, &rng);

  std::vector<graph::Pattern> queries = {
      graph::Pattern::Triangle(),     graph::Pattern::Path(3),
      graph::Pattern::Path(4),        graph::Pattern::Cycle(4),
      graph::Pattern::Diamond(),      graph::Pattern::Star(3),
      graph::Pattern::Clique(4),      graph::Pattern::TailedTriangle(),
  };
  for (const graph::Pattern& q : queries) {
    gpusim::Device device(TestParams());
    GammaEngine engine(&device, &g, {});
    ASSERT_TRUE(engine.Prepare().ok());
    auto sym = algos::MatchWojSymmetric(&engine, q);
    ASSERT_TRUE(sym.ok()) << q.DebugString();
    uint64_t expected_instances = graph::CountInstances(g, q);
    EXPECT_EQ(sym.value().instances, expected_instances)
        << q.DebugString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SymmetricMatchTest,
                         ::testing::Values(1, 2, 3));

TEST(SymmetricMatchTest, RestrictedRowsAreSortedRepresentatives) {
  Rng rng(7);
  graph::Graph g = graph::ErdosRenyi(30, 120, &rng);
  gpusim::Device device(TestParams());
  GammaEngine engine(&device, &g, {});
  ASSERT_TRUE(engine.Prepare().ok());

  // For the fully symmetric triangle, the surviving representative per
  // instance is the ascending tuple.
  auto order = graph::Pattern::Triangle().DefaultMatchingOrder();
  auto restrictions = BreakSymmetry(graph::Pattern::Triangle(), order);
  ASSERT_GE(restrictions.size(), 2u);
  auto sym = algos::MatchWojSymmetric(&engine, graph::Pattern::Triangle());
  ASSERT_TRUE(sym.ok());
  // Re-run and materialize through a fresh engine to inspect rows.
  gpusim::Device device2(TestParams());
  GammaEngine engine2(&device2, &g, {});
  ASSERT_TRUE(engine2.Prepare().ok());
  auto table = engine2.InitVertexTable();
  ASSERT_TRUE(table.ok());
  // Emulate symmetric extension: ascending clique enumeration must yield
  // the same set of rows MatchWojSymmetric counted.
  VertexExtensionSpec spec;
  spec.intersect_positions = {0};
  spec.require_ascending = true;
  ASSERT_TRUE(engine2.VertexExtension(table.value().get(), spec).ok());
  VertexExtensionSpec spec2;
  spec2.intersect_positions = {0, 1};
  spec2.require_ascending = true;
  ASSERT_TRUE(engine2.VertexExtension(table.value().get(), spec2).ok());
  EXPECT_EQ(sym.value().instances, table.value()->num_embeddings());
}

TEST(SymmetricMatchTest, FasterOrEqualWorkThanPlainWoj) {
  Rng rng(8);
  graph::Graph g = graph::PowerLaw(200, 1200, 0.8, &rng);
  gpusim::Device d1(TestParams()), d2(TestParams());
  GammaEngine e1(&d1, &g, {}), e2(&d2, &g, {});
  ASSERT_TRUE(e1.Prepare().ok());
  ASSERT_TRUE(e2.Prepare().ok());
  auto plain = algos::MatchWoj(&e1, graph::Pattern::Clique(4));
  auto sym = algos::MatchWojSymmetric(&e2, graph::Pattern::Clique(4));
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(sym.ok());
  EXPECT_EQ(sym.value().instances, plain.value().instances);
  // 24x fewer rows materialized => less simulated time.
  EXPECT_LT(sym.value().sim_millis, plain.value().sim_millis);
}

}  // namespace
}  // namespace gpm::core
