#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "core/gamma.h"
#include "core/table_io.h"
#include "graph/generators.h"

namespace gpm::core {
namespace {

gpusim::SimParams TestParams() {
  gpusim::SimParams p;
  p.device_memory_bytes = 8 << 20;
  p.um_device_buffer_bytes = 512 << 10;
  return p;
}

std::string TempPath(const char* name) {
  return testing::TempDir() + "/" + name;
}

TEST(TableIoTest, RoundTripsMultiColumnTable) {
  Rng rng(1);
  graph::Graph g = graph::ErdosRenyi(50, 200, &rng);
  gpusim::Device device(TestParams());
  GammaEngine engine(&device, &g, {});
  ASSERT_TRUE(engine.Prepare().ok());
  auto t = engine.InitVertexTable();
  ASSERT_TRUE(t.ok());
  VertexExtensionSpec spec;
  spec.intersect_positions = {0};
  spec.require_ascending = true;
  ASSERT_TRUE(engine.VertexExtension(t.value().get(), spec).ok());
  VertexExtensionSpec spec2;
  spec2.intersect_positions = {0, 1};
  spec2.require_ascending = true;
  ASSERT_TRUE(engine.VertexExtension(t.value().get(), spec2).ok());

  std::string path = TempPath("gamma_table.bin");
  ASSERT_TRUE(SaveTable(*t.value(), path).ok());
  auto loaded = LoadTable(&device, path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value()->kind(), TableKind::kVertex);
  EXPECT_EQ(loaded.value()->length(), t.value()->length());
  EXPECT_EQ(loaded.value()->Materialize(), t.value()->Materialize());
  std::remove(path.c_str());
}

TEST(TableIoTest, RoundTripsEdgeTable) {
  Rng rng(2);
  graph::Graph g = graph::ErdosRenyi(30, 90, &rng);
  g.EnsureEdgeIndex();
  gpusim::Device device(TestParams());
  GammaEngine engine(&device, &g, {});
  ASSERT_TRUE(engine.Prepare().ok());
  auto t = engine.InitEdgeTable();
  ASSERT_TRUE(t.ok());
  std::string path = TempPath("gamma_edge_table.bin");
  ASSERT_TRUE(SaveTable(*t.value(), path).ok());
  auto loaded = LoadTable(&device, path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value()->kind(), TableKind::kEdge);
  EXPECT_EQ(loaded.value()->num_embeddings(), g.num_edges());
  std::remove(path.c_str());
}

TEST(TableIoTest, RoundTripsEmptyTable) {
  gpusim::Device device(TestParams());
  EmbeddingTable t(&device, TableKind::kVertex);
  ASSERT_TRUE(t.InitFirstColumn({}).ok());
  std::string path = TempPath("gamma_empty_table.bin");
  ASSERT_TRUE(SaveTable(t, path).ok());
  auto loaded = LoadTable(&device, path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value()->num_embeddings(), 0u);
  std::remove(path.c_str());
}

TEST(TableIoTest, MissingFileIsNotFound) {
  gpusim::Device device(TestParams());
  auto loaded = LoadTable(&device, "/nonexistent/table.bin");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), ErrorCode::kNotFound);
}

TEST(TableIoTest, BadMagicRejected) {
  std::string path = TempPath("gamma_bad_table.bin");
  {
    std::ofstream out(path, std::ios::binary);
    out << "definitely not a table";
  }
  gpusim::Device device(TestParams());
  auto loaded = LoadTable(&device, path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), ErrorCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(TableIoTest, CorruptParentPointerRejected) {
  gpusim::Device device(TestParams());
  EmbeddingTable t(&device, TableKind::kVertex);
  ASSERT_TRUE(t.InitFirstColumn({1, 2}).ok());
  ASSERT_TRUE(t.AppendColumn({10, 20}, {0, 1}).ok());
  std::string path = TempPath("gamma_corrupt_table.bin");
  ASSERT_TRUE(SaveTable(t, path).ok());
  // Flip the last parent pointer to an out-of-range value.
  {
    std::fstream f(path,
                   std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(-4, std::ios::end);
    uint32_t bogus = 999;
    f.write(reinterpret_cast<const char*>(&bogus), 4);
  }
  auto loaded = LoadTable(&device, path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), ErrorCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(TableIoTest, SpillRestoresAcrossDevices) {
  // Checkpoint on one device, restore on a fresh one, continue extending.
  Rng rng(3);
  graph::Graph g = graph::ErdosRenyi(40, 160, &rng);
  std::string path = TempPath("gamma_spill_table.bin");
  uint64_t direct_count = 0;
  {
    gpusim::Device device(TestParams());
    GammaEngine engine(&device, &g, {});
    ASSERT_TRUE(engine.Prepare().ok());
    auto t = engine.InitVertexTable();
    ASSERT_TRUE(t.ok());
    VertexExtensionSpec spec;
    spec.intersect_positions = {0};
    spec.require_ascending = true;
    ASSERT_TRUE(engine.VertexExtension(t.value().get(), spec).ok());
    ASSERT_TRUE(SaveTable(*t.value(), path).ok());
    VertexExtensionSpec spec2;
    spec2.intersect_positions = {0, 1};
    spec2.require_ascending = true;
    ASSERT_TRUE(engine.VertexExtension(t.value().get(), spec2).ok());
    direct_count = t.value()->num_embeddings();
  }
  {
    gpusim::Device device(TestParams());
    GammaEngine engine(&device, &g, {});
    ASSERT_TRUE(engine.Prepare().ok());
    auto restored = LoadTable(&device, path);
    ASSERT_TRUE(restored.ok());
    VertexExtensionSpec spec2;
    spec2.intersect_positions = {0, 1};
    spec2.require_ascending = true;
    ASSERT_TRUE(
        engine.VertexExtension(restored.value().get(), spec2).ok());
    EXPECT_EQ(restored.value()->num_embeddings(), direct_count);
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace gpm::core
