// Tests for the timeline recorder: ring-buffer bounds and drop
// accounting, Chrome trace-event export well-formedness (balanced B/E
// pairs per track, monotonic timestamps), and the acceptance property
// that on a quickstart-style workload every kernel span is covered by an
// engine phase span.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "algos/kclique.h"
#include "common/random.h"
#include "core/gamma.h"
#include "graph/generators.h"
#include "gpusim/device.h"
#include "gpusim/profile.h"
#include "gpusim/trace.h"
#include "minijson.h"

namespace gpm::gpusim {
namespace {

using Kind = TraceRecorder::Kind;

SimParams SmallParams() {
  SimParams p;
  p.device_memory_bytes = 1 << 20;      // 1 MiB
  p.um_device_buffer_bytes = 64 << 10;  // 16 pages
  return p;
}

// One reconstructed span (or instant) from the exported Chrome JSON.
struct JsonSpan {
  double begin = 0;
  double end = 0;
  std::string name;
  std::string cat;
};

using SpanMap = std::map<std::pair<int, int>, std::vector<JsonSpan>>;

// Per-track validation of a parsed Chrome trace document: timestamps are
// monotonic (non-decreasing), every "E" closes an open "B", and every "B"
// is eventually closed. Fills `*spans` with the completed spans per track.
// (void return so ASSERT_* can bail out on malformed documents.)
void ValidateTracks(const minijson::Value& doc, SpanMap* spans) {
  SpanMap open;
  std::map<std::pair<int, int>, double> last_ts;
  const minijson::Value* events = doc.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  EXPECT_EQ(events->type, minijson::Value::kArray);
  for (const minijson::Value& ev : events->array) {
    const minijson::Value* ph = ev.Find("ph");
    ASSERT_NE(ph, nullptr);
    if (ph->str == "M") continue;  // metadata carries no timestamp
    const minijson::Value* pid = ev.Find("pid");
    const minijson::Value* tid = ev.Find("tid");
    const minijson::Value* ts = ev.Find("ts");
    ASSERT_NE(pid, nullptr);
    ASSERT_NE(tid, nullptr);
    ASSERT_NE(ts, nullptr);
    std::pair<int, int> track{static_cast<int>(pid->number),
                              static_cast<int>(tid->number)};
    auto it = last_ts.find(track);
    if (it != last_ts.end()) {
      EXPECT_GE(ts->number, it->second)
          << "timestamps ran backwards on track " << track.first << "/"
          << track.second;
    }
    last_ts[track] = ts->number;
    if (ph->str == "B") {
      JsonSpan s;
      s.begin = ts->number;
      const minijson::Value* name = ev.Find("name");
      ASSERT_NE(name, nullptr) << "B event without a name";
      s.name = name->str;
      if (const minijson::Value* cat = ev.Find("cat")) s.cat = cat->str;
      open[track].push_back(std::move(s));
    } else if (ph->str == "E") {
      auto& stack = open[track];
      ASSERT_FALSE(stack.empty())
          << "unbalanced E on track " << track.first << "/" << track.second;
      JsonSpan s = std::move(stack.back());
      stack.pop_back();
      s.end = ts->number;
      EXPECT_GE(s.end, s.begin);
      (*spans)[track].push_back(std::move(s));
    } else {
      EXPECT_EQ(ph->str, "i") << "unexpected event phase " << ph->str;
      const minijson::Value* args = ev.Find("args");
      ASSERT_NE(args, nullptr) << "instant without page args";
      EXPECT_NE(args->Find("region"), nullptr);
      EXPECT_NE(args->Find("page"), nullptr);
    }
  }
  for (const auto& [track, stack] : open) {
    EXPECT_TRUE(stack.empty()) << "unclosed B events on track "
                               << track.first << "/" << track.second;
  }
}

TEST(TraceRecorderTest, DisabledRecordsNothing) {
  TraceRecorder rec;
  rec.RecordSpan(Kind::kKernel, "k", 0, 10);
  rec.RecordUmEvent(Kind::kUmFault, 5, 1, 0);
  EXPECT_TRUE(rec.events().empty());
  EXPECT_EQ(rec.dropped_events(), 0u);  // disabled != dropped
}

TEST(TraceRecorderTest, CapacityDropsAndCountsExactly) {
  TraceRecorder rec(4);
  rec.set_enabled(true);
  for (int i = 0; i < 7; ++i) {
    rec.RecordSpan(Kind::kKernel, "k", i * 10.0, i * 10.0 + 5.0);
  }
  EXPECT_EQ(rec.events().size(), 4u);
  EXPECT_EQ(rec.dropped_events(), 3u);
  // The earliest events win, so a truncated trace still starts at t=0.
  EXPECT_DOUBLE_EQ(rec.events().front().begin_cycles, 0.0);

  minijson::Value doc;
  ASSERT_TRUE(minijson::Parse(rec.ToChromeTraceJson(SimParams()), &doc));
  const minijson::Value* other = doc.Find("otherData");
  ASSERT_NE(other, nullptr);
  EXPECT_EQ(other->Find("schema")->str, "gamma.trace.v1");
  EXPECT_DOUBLE_EQ(other->Find("dropped_events")->number, 3.0);
  EXPECT_DOUBLE_EQ(other->Find("capacity")->number, 4.0);

  rec.Clear();
  EXPECT_TRUE(rec.events().empty());
  EXPECT_EQ(rec.dropped_events(), 0u);
}

TEST(TraceRecorderTest, ChromeJsonBalancedWithAwkwardSpans) {
  TraceRecorder rec;
  rec.set_enabled(true);
  // Adjacent spans sharing a boundary, a nested span, a zero-length span,
  // and instants at coinciding timestamps — the awkward cases for B/E
  // ordering at equal ts.
  rec.RecordSpan(Kind::kKernel, "inner", 2, 6);
  rec.RecordSpan(Kind::kPhase, "outer", 0, 10);
  rec.RecordSpan(Kind::kKernel, "adjacent", 6, 10);
  rec.RecordSpan(Kind::kKernel, "zero", 10, 10);
  rec.RecordUmEvent(Kind::kUmFault, 6, 1, 42);
  rec.RecordUmEvent(Kind::kUmHit, 6, 1, 42);

  minijson::Value doc;
  ASSERT_TRUE(minijson::Parse(rec.ToChromeTraceJson(SimParams()), &doc));
  SpanMap spans;
  ASSERT_NO_FATAL_FAILURE(ValidateTracks(doc, &spans));
  std::size_t total = 0;
  for (const auto& [track, list] : spans) total += list.size();
  EXPECT_EQ(total, 4u);  // all four spans closed exactly once
}

TEST(DeviceTraceTest, KernelRecordListIsBounded) {
  Device device(SmallParams());
  device.set_trace_enabled(true);
  device.set_trace_capacity(2);
  for (int i = 0; i < 5; ++i) {
    device.LaunchKernel(1, [](WarpCtx& w, std::size_t) {
      w.ChargeCompute(10);
    });
  }
  EXPECT_EQ(device.kernel_trace().size(), 2u);
  EXPECT_EQ(device.dropped_kernel_records(), 3u);

  minijson::Value doc;
  ASSERT_TRUE(minijson::Parse(device.profile().ToJson(device), &doc));
  EXPECT_DOUBLE_EQ(doc.Find("kernel_trace_dropped")->number, 3.0);
  EXPECT_EQ(doc.Find("kernel_trace")->array.size(), 2u);

  device.ClearTrace();
  EXPECT_EQ(device.dropped_kernel_records(), 0u);
}

TEST(DeviceTraceTest, KernelSlotAndUmEventsLandOnTracks) {
  SimParams params = SmallParams();
  params.num_warp_slots = 2;
  Device device(params);
  device.trace().set_enabled(true);
  auto region = device.unified().Register(1 << 18);
  device.LaunchKernel(
      3,
      [&](WarpCtx& w, std::size_t t) {
        w.ChargeCompute(1000);
        w.UnifiedRead(region, t * params.um_page_bytes, 64);
      },
      "traced-kernel");

  int kernels = 0, slots = 0, faults = 0;
  for (const TraceRecorder::Event& ev : device.trace().events()) {
    switch (ev.kind) {
      case Kind::kKernel:
        ++kernels;
        EXPECT_EQ(ev.name, "traced-kernel");
        EXPECT_LT(ev.begin_cycles, ev.end_cycles);
        break;
      case Kind::kWarpSlot:
        ++slots;
        EXPECT_GE(ev.track, 0);
        EXPECT_LT(ev.track, 2);
        break;
      case Kind::kUmFault:
        ++faults;
        EXPECT_EQ(ev.region, region);
        break;
      default:
        break;
    }
  }
  EXPECT_EQ(kernels, 1);
  EXPECT_EQ(slots, 2);  // 3 tasks over 2 slots: both slots busy
  EXPECT_EQ(faults, 3);
  EXPECT_EQ(static_cast<uint64_t>(faults), device.stats().um_page_faults);
}

TEST(DeviceTraceTest, EvictionEventsCarryVictimPage) {
  SimParams params = SmallParams();  // 16-page buffer
  Device device(params);
  device.trace().set_enabled(true);
  auto region = device.unified().Register(1 << 20);
  device.LaunchKernel(1, [&](WarpCtx& w, std::size_t) {
    for (int p = 0; p < 17; ++p) {
      w.UnifiedRead(region, p * params.um_page_bytes, 8);
    }
  });
  bool saw_eviction = false;
  for (const TraceRecorder::Event& ev : device.trace().events()) {
    if (ev.kind == Kind::kUmEviction) {
      saw_eviction = true;
      EXPECT_EQ(ev.region, region);
      EXPECT_EQ(ev.page, 0u);  // LRU victim is the first page touched
    }
  }
  EXPECT_TRUE(saw_eviction);
}

// The acceptance property: a quickstart-style workload (triangle counting
// through the engine) exports a parseable Chrome trace where every track
// is balanced and every kernel span is covered by an engine phase span.
TEST(EngineTraceTest, QuickstartTimelinePhasesCoverKernels) {
  Rng rng(42);
  graph::Graph g = graph::Rmat(10, 6000, &rng);
  gpusim::SimParams params;
  params.device_memory_bytes = 16ull << 20;
  Device device(params);
  device.trace().set_enabled(true);
  device.set_trace_capacity(1u << 20);

  core::GammaEngine engine(&device, &g, {});
  ASSERT_TRUE(engine.Prepare().ok());
  auto result = algos::CountTriangles(&engine);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(device.trace().dropped_events(), 0u)
      << "raise the capacity: this test requires a complete trace";

  std::string json = device.trace().ToChromeTraceJson(device.params());
  minijson::Value doc;
  ASSERT_TRUE(minijson::Parse(json, &doc));
  SpanMap spans;
  ASSERT_NO_FATAL_FAILURE(ValidateTracks(doc, &spans));

  std::vector<JsonSpan> kernels, phases;
  for (const auto& [track, list] : spans) {
    for (const JsonSpan& s : list) {
      if (s.cat == "kernel") kernels.push_back(s);
      if (s.cat == "phase") phases.push_back(s);
    }
  }
  ASSERT_FALSE(kernels.empty());
  ASSERT_FALSE(phases.empty());
  for (const JsonSpan& k : kernels) {
    bool covered = false;
    for (const JsonSpan& p : phases) {
      if (p.begin <= k.begin && k.end <= p.end) {
        covered = true;
        break;
      }
    }
    EXPECT_TRUE(covered) << "kernel '" << k.name << "' [" << k.begin << ", "
                         << k.end << "] outside every phase span";
  }

  // Page-event instants agree with the hardware counters.
  int fault_events = 0;
  for (const TraceRecorder::Event& ev : device.trace().events()) {
    if (ev.kind == Kind::kUmFault) ++fault_events;
  }
  EXPECT_EQ(static_cast<uint64_t>(fault_events),
            device.stats().um_page_faults);
}

}  // namespace
}  // namespace gpm::gpusim
