// Static plan-verifier suite: every compiler-emitted preset plan must
// discharge every proof obligation; every count-changing corruption must
// be refuted naming the violated obligation; the engine's Run gate must
// refuse refuted plans with kFailedPrecondition; gamma.plan.v1 documents
// must round-trip byte-identically (rationale included); and the hardened
// pattern parsers must reject malformed input with structured errors.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/random.h"
#include "core/compiled_engine.h"
#include "core/gamma.h"
#include "core/pattern_compiler.h"
#include "core/plan_io.h"
#include "core/plan_verifier.h"
#include "graph/generators.h"
#include "graph/isomorphism.h"
#include "graph/pattern.h"
#include "gpusim/device.h"

namespace gpm {
namespace {

gpusim::SimParams TestParams() {
  gpusim::SimParams p;
  p.device_memory_bytes = 16 << 20;
  p.um_device_buffer_bytes = 2 << 20;
  return p;
}

graph::Graph RandomLabeled(uint64_t seed, graph::VertexId n,
                           std::size_t m) {
  Rng rng(seed);
  graph::Graph g = graph::ErdosRenyi(n, m, &rng);
  graph::AssignLabelsZipf(&g, 3, 0.3, &rng);
  g.EnsureEdgeIndex();
  return g;
}

core::VerifyReport Verify(const graph::Graph& g,
                          const core::CompiledPlan& plan) {
  core::VerifyOptions vopts;
  vopts.graph = &g;
  core::ExtensionOptions default_extension;
  vopts.engine_extension = &default_extension;
  return core::PlanVerifier(vopts).Verify(plan);
}

// True when some finding carries the given obligation name.
bool HasObligation(const core::VerifyReport& report,
                   const std::string& obligation) {
  for (const core::VerifyFinding& f : report.findings) {
    if (f.obligation == obligation) return true;
  }
  return false;
}

// Asserts the corrupted plan is refuted and the report names `obligation`.
void ExpectRefuted(const graph::Graph& g, const core::CompiledPlan& plan,
                   const std::string& obligation) {
  const core::VerifyReport report = Verify(g, plan);
  EXPECT_FALSE(report.verified) << "expected refutation naming "
                                << obligation;
  EXPECT_TRUE(HasObligation(report, obligation))
      << "wanted obligation '" << obligation << "', report:\n"
      << report.ReportText();
}

TEST(VerifierCleanTest, PresetPlansDischargeEveryObligation) {
  graph::Graph g = RandomLabeled(11, 60, 500);
  core::PatternCompiler compiler(&g);
  std::vector<std::pair<std::string, core::CompiledPlan>> plans;
  for (int k : {3, 4, 5}) {
    plans.emplace_back("kclique" + std::to_string(k),
                       compiler.CompileKClique(k, true).value());
    plans.emplace_back("motif" + std::to_string(k),
                       compiler.CompileMotifCensus(k).value());
  }
  plans.emplace_back("fpm", compiler.CompileFpm(3, 40).value());
  plans.emplace_back(
      "edge-join",
      compiler.CompileEdgeJoin(graph::Pattern::Diamond()).value());
  const std::vector<graph::Pattern> queries = {
      graph::Pattern::SmQuery(1, g.num_labels()),
      graph::Pattern::SmQuery(2, g.num_labels()),
      graph::Pattern::SmQuery(3, g.num_labels()),
      graph::Pattern::Triangle(),
      graph::Pattern::Diamond(),
      graph::Pattern::TailedTriangle(),
      graph::Pattern::Cycle(4),
  };
  for (std::size_t i = 0; i < queries.size(); ++i) {
    core::CompileOptions plain;
    plans.emplace_back("sm" + std::to_string(i),
                       compiler.CompileMatch(queries[i], plain).value());
    core::CompileOptions symmetric;
    symmetric.break_symmetry = true;
    plans.emplace_back(
        "sm-sym" + std::to_string(i),
        compiler.CompileMatch(queries[i], symmetric).value());
    core::CompileOptions autoplan;
    autoplan.plan_strategy = core::PlanStrategy::kGreedyCardinality;
    autoplan.break_symmetry = true;
    autoplan.fold_ascending = true;
    autoplan.input_aware = true;
    plans.emplace_back(
        "sm-auto" + std::to_string(i),
        compiler.CompileMatch(queries[i], autoplan).value());
  }

  for (const auto& [name, plan] : plans) {
    const core::VerifyReport report = Verify(g, plan);
    EXPECT_TRUE(report.verified)
        << name << ":\n"
        << report.ReportText();
    EXPECT_EQ(report.errors, 0) << name;
    EXPECT_TRUE(report.structural_checked && report.structural_passed)
        << name;
    EXPECT_TRUE(report.resources_checked && report.resources_passed)
        << name;
    EXPECT_GT(report.obligations_checked, 0) << name;
    // gamma.verify.v1 serialization stays well-formed for clean reports.
    const std::string json = report.ToJson();
    EXPECT_NE(json.find("\"schema\": \"gamma.verify.v1\""),
              std::string::npos)
        << name;
  }
}

TEST(VerifierRefutationTest, StructuralObligations) {
  graph::Graph g = RandomLabeled(11, 60, 500);
  core::PatternCompiler compiler(&g);
  core::CompileOptions sym;
  sym.break_symmetry = true;
  const core::CompiledPlan tailed =
      compiler.CompileMatch(graph::Pattern::TailedTriangle(), sym).value();

  {  // duplicate matching-order entry
    core::CompiledPlan bad = tailed;
    bad.order[0] = bad.order[1];
    ExpectRefuted(g, bad, "order-permutation");
  }
  {  // disconnected pattern under an otherwise size-consistent plan
    core::CompiledPlan bad = tailed;
    graph::Pattern split(4);
    split.AddEdge(0, 1);
    split.AddEdge(2, 3);
    bad.pattern = split;
    ExpectRefuted(g, bad, "pattern-connected");
  }
  {  // candidate label contradicting the pattern
    core::CompiledPlan bad = tailed;
    bad.levels[0].candidate_label = 7;
    ExpectRefuted(g, bad, "label-consistent");
  }
  {  // missing level
    core::CompiledPlan bad = tailed;
    bad.levels.pop_back();
    ExpectRefuted(g, bad, "level-count");
  }
  {  // intersect column referencing an unbound position
    core::CompiledPlan bad = tailed;
    bad.levels.back().intersect_positions.push_back(7);
    ExpectRefuted(g, bad, "intersect-bounds");
  }
  {  // empty intersect set on a subgraph-match level
    core::CompiledPlan bad = tailed;
    bad.levels[0].intersect_positions.clear();
    ExpectRefuted(g, bad, "prefix-connected");
  }
  {  // restriction not anchored at its own level
    core::CompiledPlan bad = tailed;
    bad.levels.back().restrictions.push_back({0, 1});
    ExpectRefuted(g, bad, "restriction-bounds");
  }
  {  // count-only before the final level
    core::CompiledPlan bad = tailed;
    bad.levels[0].count_only = true;
    ExpectRefuted(g, bad, "count-only-last");
  }
  {  // frequent mining with no edge budget
    core::CompiledPlan bad = compiler.CompileFpm(3, 40).value();
    bad.max_edges = 0;
    ExpectRefuted(g, bad, "fpm-params");
  }
  {  // edge-join step that is not a pattern edge (diamond lacks 1-3)
    core::CompiledPlan bad =
        compiler.CompileEdgeJoin(graph::Pattern::Diamond()).value();
    bad.edge_order[1] = {1, 3};
    ExpectRefuted(g, bad, "edge-order");
  }
  {  // motif plans must stay unlabeled union extensions
    core::CompiledPlan bad = compiler.CompileMotifCensus(3).value();
    bad.levels[0].intersect_positions.push_back(0);
    ExpectRefuted(g, bad, "motif-shape");
  }
}

TEST(VerifierRefutationTest, SemanticObligations) {
  graph::Graph g = RandomLabeled(11, 60, 500);
  core::PatternCompiler compiler(&g);
  core::CompileOptions sym;
  sym.break_symmetry = true;
  const core::CompiledPlan clique =
      compiler.CompileMatch(graph::Pattern::Triangle(), sym).value();
  ASSERT_TRUE(Verify(g, clique).verified);

  {  // wrong automorphism count
    core::CompiledPlan bad = clique;
    bad.automorphisms += 1;
    ExpectRefuted(g, bad, "automorphism-count");
  }
  {  // dropping a restriction leaves an orbit with two representatives
    core::CompiledPlan bad = clique;
    bool dropped = false;
    for (auto& level : bad.levels) {
      if (!level.restrictions.empty() && !dropped) {
        level.restrictions.pop_back();
        dropped = true;
      }
    }
    ASSERT_TRUE(dropped);
    ExpectRefuted(g, bad, "restriction-complete");
  }
  {  // a contradictory restriction empties an orbit entirely
    core::CompiledPlan bad = clique;
    const int last = static_cast<int>(bad.order.size()) - 1;
    bad.levels.back().restrictions.push_back({last, 0});  // M_last < M_0
    ExpectRefuted(g, bad, "restriction-sound");
  }
  {  // filtering without claiming symmetry_broken undercounts
    core::CompiledPlan bad = clique;
    bad.symmetry_broken = false;
    ExpectRefuted(g, bad, "restriction-unclaimed");
  }
  {  // intersecting a non-edge drops valid embeddings
    core::CompiledPlan bad =
        compiler
            .CompileMatch(graph::Pattern::TailedTriangle(),
                          core::CompileOptions{})
            .value();
    // Find a level whose intersect set misses some bound position (the
    // tail vertex has one backward neighbor) and add the non-edge.
    bool corrupted = false;
    const int fd = bad.first_depth();
    for (std::size_t i = 0; i < bad.levels.size() && !corrupted; ++i) {
      const int d = fd + static_cast<int>(i);
      if (static_cast<int>(bad.levels[i].intersect_positions.size()) < d) {
        for (int pos = 0; pos < d; ++pos) {
          auto& v = bad.levels[i].intersect_positions;
          if (std::find(v.begin(), v.end(), pos) == v.end()) {
            v.push_back(pos);
            corrupted = true;
            break;
          }
        }
      }
    }
    ASSERT_TRUE(corrupted);
    ExpectRefuted(g, bad, "edge-coverage");
  }
  {  // disabling injectivity without an implying restriction chain
    core::CompiledPlan bad =
        compiler
            .CompileMatch(graph::Pattern::Path(3), core::CompileOptions{})
            .value();
    for (auto& level : bad.levels) level.enforce_injective = false;
    ExpectRefuted(g, bad, "injective-required");
  }
  {  // k-clique folding implies injectivity: disabling the filter is fine
    core::CompiledPlan folded = compiler.CompileKClique(4, false).value();
    for (auto& level : folded.levels) level.enforce_injective = false;
    EXPECT_TRUE(Verify(g, folded).verified);
  }
}

TEST(VerifierWarningTest, AdvisoryFindingsDoNotRefute) {
  graph::Graph g = RandomLabeled(11, 60, 500);
  core::PatternCompiler compiler(&g);

  {  // pre_merge pinned on with a single intersect column
    core::CompiledPlan plan =
        compiler
            .CompileMatch(graph::Pattern::Path(3), core::CompileOptions{})
            .value();
    plan.levels.back().pre_merge = true;
    const core::VerifyReport report = Verify(g, plan);
    EXPECT_TRUE(report.verified) << report.ReportText();
    EXPECT_GE(report.warnings, 1);
    EXPECT_TRUE(HasObligation(report, "pre-merge-width"));
  }
  {  // prealloc reservation that cannot fit the pool is advisory: the
    // runtime reproduces the paper's failure mode as device-out-of-memory
    core::CompiledPlan plan = compiler.CompileKClique(3, false).value();
    core::ExtensionOptions tiny;
    tiny.write_strategy = core::WriteStrategy::kPreAlloc;
    tiny.pool_bytes = 8;  // one table entry
    core::VerifyOptions vopts;
    vopts.graph = &g;
    vopts.engine_extension = &tiny;
    const core::VerifyReport report =
        core::PlanVerifier(vopts).Verify(plan);
    EXPECT_TRUE(report.verified) << report.ReportText();
    EXPECT_TRUE(HasObligation(report, "prealloc-overflow"))
        << report.ReportText();
    EXPECT_TRUE(report.resources_passed);
    // The abstract interpretation recorded the oversized reservation.
    bool overflow_recorded = false;
    for (const core::VerifyAbstractLevel& a : report.abstract_levels) {
      if (a.prealloc_entries > a.pool_entries) overflow_recorded = true;
    }
    EXPECT_TRUE(overflow_recorded);
  }
}

TEST(VerifierGateTest, EngineRefusesRefutedPlans) {
  graph::Graph g = RandomLabeled(11, 60, 500);
  core::PatternCompiler compiler(&g);
  core::CompileOptions sym;
  sym.break_symmetry = true;
  core::CompiledPlan bad =
      compiler.CompileMatch(graph::Pattern::Triangle(), sym).value();
  bad.automorphisms = 99;

  gpusim::Device device(TestParams());
  core::GammaEngine engine(&device, &g, {});
  ASSERT_TRUE(engine.Prepare().ok());
  auto run = core::CompiledEngine(&engine).Run(bad);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), ErrorCode::kFailedPrecondition);
  EXPECT_NE(run.status().message().find("automorphism-count"),
            std::string::npos)
      << run.status().message();
  // The gate is pure analysis: the refused run charged no cycles.
  EXPECT_EQ(device.stats().kernel_launches, 0u);
}

TEST(VerifierGateTest, VerifiedPlanWitnessRuns) {
  graph::Graph g = RandomLabeled(11, 60, 500);
  core::PatternCompiler compiler(&g);
  core::CompiledPlan plan = compiler.CompileKClique(3, true).value();

  gpusim::Device device(TestParams());
  core::GammaEngine engine(&device, &g, {});
  ASSERT_TRUE(engine.Prepare().ok());
  core::CompiledEngine compiled(&engine);
  auto verified =
      core::VerifiedPlan::Make(plan, compiled.MakeVerifyOptions());
  ASSERT_TRUE(verified.ok()) << verified.status().message();
  EXPECT_TRUE(verified.value().report().verified);
  auto run = compiled.Run(verified.value());
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run.value().embeddings,
            graph::CountInstances(g, graph::Pattern::Triangle()));
}

TEST(PlanRoundTripTest, AllKindsSerializeByteIdentically) {
  graph::Graph g = RandomLabeled(11, 60, 500);
  core::PatternCompiler compiler(&g);
  std::vector<core::CompiledPlan> plans;
  plans.push_back(compiler.CompileKClique(4, true).value());
  plans.push_back(compiler.CompileMotifCensus(4).value());
  plans.push_back(compiler.CompileFpm(3, 40).value());
  plans.push_back(
      compiler.CompileEdgeJoin(graph::Pattern::Diamond()).value());
  core::CompileOptions plain;
  plans.push_back(
      compiler.CompileMatch(graph::Pattern::SmQuery(2, g.num_labels()), plain)
          .value());
  // Input-aware compilation fills every rationale field; byte identity
  // here proves the parser re-derives them rather than dropping them.
  core::CompileOptions autoplan;
  autoplan.plan_strategy = core::PlanStrategy::kGreedyCardinality;
  autoplan.break_symmetry = true;
  autoplan.fold_ascending = true;
  autoplan.input_aware = true;
  plans.push_back(
      compiler.CompileMatch(graph::Pattern::Diamond(), autoplan).value());

  for (const core::CompiledPlan& plan : plans) {
    const std::string doc = plan.ToJson();
    auto reparsed = core::ParsePlanJson(doc);
    ASSERT_TRUE(reparsed.ok())
        << plan.DebugString() << ": " << reparsed.status().message();
    EXPECT_EQ(reparsed.value().ToJson(), doc) << plan.DebugString();
    // And the reparsed plan still verifies.
    EXPECT_TRUE(Verify(g, reparsed.value()).verified);
  }
}

std::string ReplaceOnce(std::string doc, const std::string& from,
                        const std::string& to) {
  const auto pos = doc.find(from);
  EXPECT_NE(pos, std::string::npos) << from;
  if (pos != std::string::npos) doc.replace(pos, from.size(), to);
  return doc;
}

TEST(PlanParseTest, RejectsMalformedDocuments) {
  graph::Graph g = RandomLabeled(11, 60, 500);
  core::PatternCompiler compiler(&g);
  const std::string doc = compiler.CompileKClique(3, false).value().ToJson();
  ASSERT_TRUE(core::ParsePlanJson(doc).ok());

  EXPECT_FALSE(core::ParsePlanJson("").ok());
  EXPECT_FALSE(core::ParsePlanJson("{}").ok());
  EXPECT_FALSE(core::ParsePlanJson("not json").ok());
  EXPECT_FALSE(
      core::ParsePlanJson(
          ReplaceOnce(doc, "\"gamma.plan.v1\"", "\"gamma.plan.v2\""))
          .ok());
  EXPECT_FALSE(
      core::ParsePlanJson(
          ReplaceOnce(doc, "\"subgraph-match\"", "\"bogus-kind\""))
          .ok());
  // A label spelled as the numeric wildcard sentinel would re-serialize
  // as "*": rejected to preserve byte identity.
  EXPECT_FALSE(
      core::ParsePlanJson(ReplaceOnce(doc, "\"*\"", "4294967295")).ok());
  // Out-of-range order entry.
  EXPECT_FALSE(core::ParsePlanJson(ReplaceOnce(doc,
                                               "\"order\": [\n    0,",
                                               "\"order\": [\n    99,"))
                   .ok());
}

TEST(PatternHardeningTest, InlineSpecRejectsAbuse) {
  EXPECT_TRUE(graph::ParsePattern("0-1,1-2,2-0").ok());
  EXPECT_TRUE(graph::ParsePattern("0-1,1-2;labels=5,*,7").ok());
  // Duplicate edges, in either orientation.
  EXPECT_FALSE(graph::ParsePattern("0-1,1-0").ok());
  EXPECT_FALSE(graph::ParsePattern("0-1,1-2,0-1").ok());
  // Gap in the vertex id range (vertex 1 appears in no edge).
  EXPECT_FALSE(graph::ParsePattern("0-2").ok());
  // Labels must be integers below the wildcard sentinel.
  EXPECT_FALSE(graph::ParsePattern("0-1;labels=a,b").ok());
  EXPECT_FALSE(graph::ParsePattern("0-1;labels=4294967295,0").ok());
  EXPECT_FALSE(graph::ParsePattern("0-1;labels=-3,0").ok());
  EXPECT_FALSE(graph::ParsePattern("0-1;labels=").ok());
  // Self loops and range abuse still refused.
  EXPECT_FALSE(graph::ParsePattern("3-3").ok());
  EXPECT_FALSE(graph::ParsePattern("0-99999999999999999999").ok());
  EXPECT_FALSE(graph::ParsePattern("-1-2").ok());
}

class PatternFileTest : public ::testing::Test {
 protected:
  // Writes `text` to a fresh temp file and parses it.
  Result<graph::Pattern> Parse(const std::string& text) {
    const std::string path =
        ::testing::TempDir() + "pattern_" +
        std::to_string(reinterpret_cast<uintptr_t>(this)) + "_" +
        std::to_string(counter_++) + ".txt";
    std::ofstream out(path);
    out << text;
    out.close();
    auto result = graph::ParsePatternFile(path);
    std::remove(path.c_str());
    return result;
  }
  int counter_ = 0;
};

TEST_F(PatternFileTest, ParsesWellFormedFiles) {
  auto p = Parse("# triangle with a tail\n0 1\n1 2\n2 0\n0 3\n"
                 "labels 1 * 2 *\n");
  ASSERT_TRUE(p.ok()) << p.status().message();
  EXPECT_EQ(p.value().num_vertices(), 4);
  EXPECT_EQ(p.value().num_edges(), 4);
  EXPECT_EQ(p.value().label(0), 1u);
  EXPECT_EQ(p.value().label(1), graph::Pattern::kAnyLabel);
}

TEST_F(PatternFileTest, RejectsMalformedFiles) {
  EXPECT_FALSE(Parse("").ok());                    // no edges
  EXPECT_FALSE(Parse("0 0\n").ok());               // self loop
  EXPECT_FALSE(Parse("0 1\n0 1\n").ok());          // duplicate edge
  EXPECT_FALSE(Parse("0 1\n1 0\n").ok());          // duplicate, flipped
  EXPECT_FALSE(Parse("0 2\n").ok());               // id gap
  EXPECT_FALSE(Parse("0 1 2\n").ok());             // trailing token
  EXPECT_FALSE(Parse("0\n").ok());                 // missing endpoint
  EXPECT_FALSE(Parse("0 x\n").ok());               // non-integer vertex
  EXPECT_FALSE(Parse("1O 2\n").ok());              // atoi would accept '1'
  EXPECT_FALSE(Parse("0 1\nlabels 1\n").ok());     // label count
  EXPECT_FALSE(Parse("0 1\nlabels a b\n").ok());   // non-integer label
  EXPECT_FALSE(
      Parse("0 1\nlabels 1 2\nlabels 1 2\n").ok());  // two label lines
  EXPECT_FALSE(Parse("0 9\n").ok());               // vertex out of range
}

TEST(VerifierFuzzTest, RandomPatternsMatchOracleThroughTheGate) {
  graph::Graph g = RandomLabeled(5, 64, 256);
  core::PatternCompiler compiler(&g);
  Rng rng(17);
  for (int iter = 0; iter < 30; ++iter) {
    const int n = 2 + static_cast<int>(rng.NextBounded(3));
    graph::Pattern p(n);
    for (int i = 1; i < n; ++i) {
      p.AddEdge(i, static_cast<int>(rng.NextBounded(i)));
    }
    for (int i = 0; i < n; ++i) {
      for (int j = i + 1; j < n; ++j) {
        if (!p.HasEdge(i, j) && rng.NextBool(0.35)) p.AddEdge(i, j);
      }
    }
    core::CompileOptions copts;
    copts.break_symmetry = rng.NextBool(0.5);
    auto compiled = compiler.CompileMatch(p, copts);
    ASSERT_TRUE(compiled.ok()) << p.DebugString();
    const core::VerifyReport report = Verify(g, compiled.value());
    EXPECT_TRUE(report.verified)
        << p.DebugString() << "\n"
        << report.ReportText();

    gpusim::Device device(TestParams());
    core::GammaEngine engine(&device, &g, {});
    ASSERT_TRUE(engine.Prepare().ok());
    auto run = core::CompiledEngine(&engine).Run(compiled.value());
    ASSERT_TRUE(run.ok()) << run.status().message();
    EXPECT_EQ(run.value().instances, graph::CountInstances(g, p))
        << p.DebugString();
  }
}

}  // namespace
}  // namespace gpm
