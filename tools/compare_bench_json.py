#!/usr/bin/env python3
"""Diffs a gamma.bench.v1 document against a checked-in baseline and fails
on any drift outside tolerance — the CI perf-regression gate.

The simulator is deterministic, so almost everything must match exactly:
run names, skip states, every DeviceStats counter, phase invocation
counts, device parameters. Cycle-valued fields (cycles, sim_millis,
link_busy_cycles, phase cycles, adaptivity estimates) are compared with a
small relative tolerance (default 1e-9) that absorbs floating-point
differences across compilers/architectures (FMA contraction, libm) while
still catching any real cost-model change, which moves these numbers by
orders of magnitude more.

Usage:
    compare_bench_json.py baseline.json current.json
        [--tol KEY=REL ...]       per-key relative tolerance override
        [--default-tol REL]       tolerance for cycle-valued keys
        [--report FILE]           write a line-per-difference report

Exit status: 0 = within tolerance, 1 = drift or structural mismatch,
2 = usage error. Intentional perf changes are shipped by regenerating the
baseline in the same PR (see docs/OBSERVABILITY.md).
"""

import argparse
import json
import sys

# Keys holding simulated-time values: compared with a relative tolerance.
# Everything else (counters, bytes, counts, names, flags) must be exact.
CYCLE_VALUED_KEYS = {
    "cycles",
    "sim_millis",
    "link_busy_cycles",
    "plan_cycles",
    "actual_access_cycles",
    "est_unified_cycles",
    "est_zerocopy_cycles",
    "regret_cycles",
    "mean_unified_pages",
    "access_cycles",
    # gamma-prof bottleneck summaries (per-run "bottleneck" object).
    "critical_path_cycles",
    "pcie_link_utilization",
    "projected_cycles",
    "speedup",
    # resource_cycles per-class attribution keys.
    "compute",
    "dram",
    "pcie",
    "um",
    "sort",
    "sync_idle",
    # Plan-profiler digest (per-run "planprof" object): Q-error and
    # imbalance are cycle/estimate ratios, est_rows a float estimate.
    "q_error",
    "worst_q_error",
    "est_rows",
    "imbalance",
}

# Keys that may legitimately differ between a baseline and a fresh run:
# wall_clock_ms is host wall time (machine- and load-dependent by nature),
# host_threads is the executor configuration — both are measurement
# context, not simulation results, and the determinism contract says
# neither may move any other key.
IGNORED_KEYS = {"wall_clock_ms", "host_threads"}


def rel_diff(a, b):
    if a == b:
        return 0.0
    scale = max(abs(a), abs(b))
    return abs(a - b) / scale if scale > 0 else float("inf")


class Comparator:
    def __init__(self, default_tol, overrides):
        self.default_tol = default_tol
        self.overrides = overrides
        self.diffs = []

    def tolerance_for(self, key):
        if key in self.overrides:
            return self.overrides[key]
        if key in CYCLE_VALUED_KEYS:
            return self.default_tol
        return 0.0

    def compare(self, base, cur, path, key=""):
        if key in IGNORED_KEYS:
            return
        if isinstance(base, dict) and isinstance(cur, dict):
            for k in base:
                if k in IGNORED_KEYS:
                    continue
                if k not in cur:
                    self.diffs.append(f"{path}.{k}: missing in current")
                else:
                    self.compare(base[k], cur[k], f"{path}.{k}", k)
            for k in cur:
                if k not in base and k not in IGNORED_KEYS:
                    self.diffs.append(f"{path}.{k}: not in baseline")
            return
        if isinstance(base, list) and isinstance(cur, list):
            if len(base) != len(cur):
                self.diffs.append(
                    f"{path}: length {len(base)} -> {len(cur)}")
                return
            for i, (b, c) in enumerate(zip(base, cur)):
                self.compare(b, c, f"{path}[{i}]", key)
            return
        # bool is an int subclass: treat real bools as exact scalars first.
        if isinstance(base, bool) or isinstance(cur, bool):
            if base is not cur:
                self.diffs.append(f"{path}: {base} -> {cur}")
            return
        if isinstance(base, (int, float)) and isinstance(cur, (int, float)):
            tol = self.tolerance_for(key)
            d = rel_diff(base, cur)
            if d > tol:
                self.diffs.append(
                    f"{path}: {base!r} -> {cur!r} (rel {d:.3e}, tol {tol:g})")
            return
        if base != cur:
            self.diffs.append(f"{path}: {base!r} -> {cur!r}")


def index_runs(doc, path):
    runs = {}
    for run in doc.get("runs", []):
        name = run.get("name", "?")
        if name in runs:
            print(f"{path}: duplicate run name {name!r}", file=sys.stderr)
        runs[name] = run
    return runs


def main(argv):
    ap = argparse.ArgumentParser(
        description="diff a gamma.bench.v1 document against a baseline")
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--default-tol", type=float, default=1e-9,
                    help="relative tolerance for cycle-valued keys")
    ap.add_argument("--tol", action="append", default=[],
                    metavar="KEY=REL",
                    help="per-key relative tolerance override")
    ap.add_argument("--report", help="write the difference report here")
    args = ap.parse_args(argv[1:])

    overrides = {}
    for spec in args.tol:
        key, _, val = spec.partition("=")
        if not val:
            ap.error(f"--tol wants KEY=REL, got {spec!r}")
        overrides[key] = float(val)

    docs = []
    for path in (args.baseline, args.current):
        try:
            with open(path, encoding="utf-8") as f:
                docs.append(json.load(f))
        except (OSError, json.JSONDecodeError) as e:
            print(f"{path}: {e}", file=sys.stderr)
            return 2
    base_doc, cur_doc = docs

    cmp = Comparator(args.default_tol, overrides)
    for doc, path in ((base_doc, args.baseline), (cur_doc, args.current)):
        if doc.get("schema") != "gamma.bench.v1":
            print(f"{path}: schema is {doc.get('schema')!r}, "
                  f"want 'gamma.bench.v1'", file=sys.stderr)
            return 2

    cmp.compare(base_doc.get("binary"), cur_doc.get("binary"), "binary",
                "binary")
    base_runs = index_runs(base_doc, args.baseline)
    cur_runs = index_runs(cur_doc, args.current)
    for name in base_runs:
        if name not in cur_runs:
            cmp.diffs.append(f"run {name!r}: missing in current")
    for name in cur_runs:
        if name not in base_runs:
            cmp.diffs.append(f"run {name!r}: not in baseline")
    for name in base_runs:
        if name in cur_runs:
            cmp.compare(base_runs[name], cur_runs[name], name)

    if args.report:
        with open(args.report, "w", encoding="utf-8") as f:
            if cmp.diffs:
                f.write(f"{len(cmp.diffs)} difference(s) vs "
                        f"{args.baseline}:\n")
                for d in cmp.diffs:
                    f.write(d + "\n")
            else:
                f.write(f"no differences vs {args.baseline}\n")

    if cmp.diffs:
        print(f"{args.current}: {len(cmp.diffs)} difference(s) vs "
              f"{args.baseline}", file=sys.stderr)
        for d in cmp.diffs:
            print(f"  {d}", file=sys.stderr)
        print("if intentional, regenerate the baseline in this PR "
              "(see docs/OBSERVABILITY.md)", file=sys.stderr)
        return 1
    print(f"{args.current}: matches {args.baseline} "
          f"({len(base_runs)} runs, tol {args.default_tol:g} on cycles)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
