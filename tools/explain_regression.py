#!/usr/bin/env python3
"""Attributes a perf-gate difference to resource classes.

Takes two profiles — either two gamma.bench.v1 documents (the baseline and
the failing current run, each carrying per-run `bottleneck` summaries) or
two gamma.critpath.v1 documents — and explains where the cycles went: the
per-resource-class delta for every run that moved, the phase-level shifts
(bench documents), and which what-if projection moved the most. The output
is a plain-text triage report; CI writes it next to the perf diff so the
artifact answers "what got slower, and on which resource" without a local
repro.

This tool never gates anything (exit 0 unless the inputs are unreadable):
tools/compare_bench_json.py decides pass/fail, this explains the failure.

Usage:
    explain_regression.py baseline.json current.json [--out FILE]

Stdlib only.
"""

import argparse
import json
import sys

RESOURCE_CLASSES = ["compute", "dram", "pcie", "um", "sort", "sync_idle"]


def load(path):
    with open(path, encoding="utf-8") as f:
        return json.load(f)


def fmt_cycles(value):
    return f"{value:+,.0f}cy"


def class_deltas(base, cur):
    """Per-class (delta, base, cur) triples, largest |delta| first."""
    rows = []
    for cls in RESOURCE_CLASSES:
        b = float(base.get(cls, 0.0))
        c = float(cur.get(cls, 0.0))
        if b != c:
            rows.append((cls, c - b, b, c))
    rows.sort(key=lambda r: abs(r[1]), reverse=True)
    return rows


def explain_attribution(out, indent, base_attr, cur_attr, total_delta):
    rows = class_deltas(base_attr, cur_attr)
    if not rows:
        out.append(f"{indent}resource attribution unchanged")
        return
    for cls, delta, b, c in rows:
        share = ""
        if total_delta:
            share = f"  ({delta / total_delta * 100.0:+.1f}% of the move)"
        out.append(f"{indent}{cls:<10} {fmt_cycles(delta):>16}   "
                   f"{b:,.0f} -> {c:,.0f}{share}")


def explain_whatifs(out, indent, base_wi, cur_wi):
    base_by_key = {(w.get("resource"), w.get("cost_factor")): w
                   for w in base_wi or []}
    moved = []
    for w in cur_wi or []:
        key = (w.get("resource"), w.get("cost_factor"))
        if key[1] == 1.0:
            continue  # identity/calibration row
        b = base_by_key.get(key)
        if b is None:
            continue
        delta = float(w.get("projected_cycles", 0.0)) \
            - float(b.get("projected_cycles", 0.0))
        if delta:
            moved.append((key, delta, b, w))
    if not moved:
        return
    moved.sort(key=lambda m: abs(m[1]), reverse=True)
    out.append(f"{indent}what-if projections that moved:")
    for (resource, factor), delta, b, w in moved:
        out.append(f"{indent}  {resource} x{factor:g}: "
                   f"{b['projected_cycles']:,.0f} -> "
                   f"{w['projected_cycles']:,.0f} ({fmt_cycles(delta)})")


def explain_critpath_pair(base, cur):
    out = ["gamma.critpath.v1 comparison"]
    b_cp = float(base.get("critical_path_cycles", 0.0))
    c_cp = float(cur.get("critical_path_cycles", 0.0))
    delta = c_cp - b_cp
    out.append(f"  critical path: {b_cp:,.0f} -> {c_cp:,.0f} "
               f"({fmt_cycles(delta)})")
    out.append(f"  binding resource: {base.get('binding')} -> "
               f"{cur.get('binding')}")
    out.append("  per-class attribution of the move:")
    explain_attribution(out, "    ", base.get("resource_cycles", {}),
                        cur.get("resource_cycles", {}), delta)
    base_phases = {p.get("name"): p for p in base.get("phases", [])}
    for ph in cur.get("phases", []):
        bp = base_phases.get(ph.get("name"))
        if bp is None:
            out.append(f"  phase {ph.get('name')!r}: new in current "
                       f"({ph.get('cycles', 0.0):,.0f}cy)")
            continue
        pd = float(ph.get("cycles", 0.0)) - float(bp.get("cycles", 0.0))
        if not pd:
            continue
        out.append(f"  phase {ph.get('name')!r}: "
                   f"{bp.get('cycles', 0.0):,.0f} -> "
                   f"{ph.get('cycles', 0.0):,.0f} ({fmt_cycles(pd)}), "
                   f"binding {bp.get('binding')} -> {ph.get('binding')}")
        explain_attribution(out, "    ", bp.get("attribution", {}),
                            ph.get("attribution", {}), pd)
    explain_whatifs(out, "  ", base.get("whatif"), cur.get("whatif"))
    return out


def explain_bench_pair(base, cur):
    out = [f"gamma.bench.v1 comparison ({cur.get('binary', '?')})"]
    base_runs = {r.get("name"): r for r in base.get("runs", [])}
    cur_runs = {r.get("name"): r for r in cur.get("runs", [])}
    moved_any = False
    for name in base_runs:
        if name not in cur_runs:
            out.append(f"run {name!r}: missing in current")
    for name in cur_runs:
        if name not in base_runs:
            out.append(f"run {name!r}: not in baseline")
    for name, br in base_runs.items():
        cr = cur_runs.get(name)
        if cr is None or br.get("skipped") or cr.get("skipped"):
            continue
        b_cycles = float(br.get("cycles", 0.0))
        c_cycles = float(cr.get("cycles", 0.0))
        delta = c_cycles - b_cycles
        if not delta:
            continue
        moved_any = True
        pct = delta / b_cycles * 100.0 if b_cycles else float("inf")
        out.append("")
        out.append(f"run {name}: {b_cycles:,.0f} -> {c_cycles:,.0f} "
                   f"({fmt_cycles(delta)}, {pct:+.2f}%)")
        b_bn = br.get("bottleneck")
        c_bn = cr.get("bottleneck")
        if not isinstance(b_bn, dict) or not isinstance(c_bn, dict):
            out.append("  (no bottleneck summaries on both sides — "
                       "regenerate the baseline with this toolchain to "
                       "get a per-resource attribution)")
            continue
        if b_bn.get("binding") != c_bn.get("binding"):
            out.append(f"  binding resource: {b_bn.get('binding')} -> "
                       f"{c_bn.get('binding')}")
        out.append("  per-class attribution of the move:")
        explain_attribution(out, "    ",
                            b_bn.get("resource_cycles", {}),
                            c_bn.get("resource_cycles", {}), delta)
        base_phases = {p.get("name"): p for p in br.get("phases", [])}
        for ph in cr.get("phases", []):
            bp = base_phases.get(ph.get("name"))
            if bp is None:
                continue
            pd = float(ph.get("cycles", 0.0)) - float(bp.get("cycles", 0.0))
            if pd:
                out.append(f"  phase {ph.get('name')!r}: "
                           f"{bp.get('cycles', 0.0):,.0f} -> "
                           f"{ph.get('cycles', 0.0):,.0f} "
                           f"({fmt_cycles(pd)})")
        explain_whatifs(out, "  ", b_bn.get("whatif"), c_bn.get("whatif"))
    if not moved_any:
        out.append("no run moved in simulated cycles — the gate "
                   "difference is structural (new/renamed runs, counter "
                   "or schema changes), not a cycle regression")
    return out


def main(argv):
    ap = argparse.ArgumentParser(
        description="attribute a perf diff to resource classes")
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--out", help="also write the report to this file")
    args = ap.parse_args(argv[1:])

    try:
        base = load(args.baseline)
        cur = load(args.current)
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: {e}", file=sys.stderr)
        return 2

    schemas = (base.get("schema"), cur.get("schema"))
    if schemas[0] != schemas[1]:
        print(f"error: schema mismatch {schemas[0]!r} vs {schemas[1]!r}",
              file=sys.stderr)
        return 2
    if schemas[0] == "gamma.bench.v1":
        out = explain_bench_pair(base, cur)
    elif schemas[0] == "gamma.critpath.v1":
        out = explain_critpath_pair(base, cur)
    else:
        print(f"error: unsupported schema {schemas[0]!r} (want "
              f"gamma.bench.v1 or gamma.critpath.v1)", file=sys.stderr)
        return 2

    report = "\n".join(out) + "\n"
    sys.stdout.write(report)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as f:
            f.write(report)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
