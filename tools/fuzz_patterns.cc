// fuzz_patterns — differential fuzzer for the pattern compiler and the
// static plan verifier.
//
// Two loops over seeded random connected patterns:
//
//   1. Clean loop: compile each pattern (randomized compiler options),
//      require the verifier to accept the plan, round-trip it through the
//      gamma.plan.v1 serializer byte-identically, execute it on the
//      simulated device, and cross-check embedding/instance counts against
//      the CPU backtracking oracle (graph::CountEmbeddings /
//      CountInstances).
//   2. Mutant loop: corrupt each compiled plan (drop a symmetry
//      restriction, swap matching-order entries, flip strategy and
//      restriction bits, perturb the automorphism count) and feed the
//      mutant to the verifier. A refuted mutant is never executed (it
//      could index out of bounds); an accepted mutant MUST still match
//      the oracle — that contrapositive is the fuzzer's core assertion:
//      any count-changing corruption has to be statically refuted.
//
// Exit code 0 when every assertion holds, 1 otherwise. --report writes a
// JSON findings document for CI artifact upload.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common/random.h"
#include "core/compiled_engine.h"
#include "core/gamma.h"
#include "core/pattern_compiler.h"
#include "core/plan_io.h"
#include "core/plan_verifier.h"
#include "graph/generators.h"
#include "graph/isomorphism.h"
#include "graph/pattern.h"
#include "gpusim/device.h"

namespace {

using namespace gpm;

struct FuzzOptions {
  int patterns = 200;
  uint64_t seed = 1;
  int max_vertices = 5;
  int mutants_per_plan = 3;
  std::string report_path;
  bool verbose = false;
};

struct Failure {
  std::string kind;     // which assertion broke
  std::string pattern;  // Pattern::DebugString of the subject
  std::string detail;
};

std::vector<Failure> g_failures;

void Fail(const std::string& kind, const graph::Pattern& p,
          const std::string& detail) {
  g_failures.push_back({kind, p.DebugString(), detail});
  std::fprintf(stderr, "FAIL [%s] %s: %s\n", kind.c_str(),
               p.DebugString().c_str(), detail.c_str());
}

// Random connected pattern: a random spanning tree (vertex i attaches to
// a uniform earlier vertex) plus independent extra edges, optionally
// labeled with wildcards mixed in.
graph::Pattern RandomPattern(Rng* rng, int max_vertices,
                             uint32_t num_labels) {
  const int n = 2 + static_cast<int>(rng->NextBounded(
                        static_cast<uint64_t>(max_vertices - 1)));
  graph::Pattern p(n);
  for (int i = 1; i < n; ++i) {
    p.AddEdge(i, static_cast<int>(rng->NextBounded(i)));
  }
  const double extra = 0.2 + 0.4 * rng->NextDouble();
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      if (!p.HasEdge(i, j) && rng->NextBool(extra)) p.AddEdge(i, j);
    }
  }
  if (rng->NextBool(0.4)) {
    for (int i = 0; i < n; ++i) {
      if (rng->NextBool(0.5)) {
        p.SetLabel(i, static_cast<graph::Label>(
                          rng->NextBounded(num_labels)));
      }
    }
  }
  return p;
}

core::CompileOptions RandomCompileOptions(Rng* rng) {
  core::CompileOptions copts;
  copts.break_symmetry = rng->NextBool(0.5);
  if (copts.break_symmetry) copts.fold_ascending = rng->NextBool(0.5);
  copts.input_aware = rng->NextBool(0.3);
  copts.count_only_last = rng->NextBool(0.3);
  if (copts.input_aware) {
    copts.plan_strategy = core::PlanStrategy::kGreedyCardinality;
  }
  return copts;
}

// One corruption from the mutation catalog, applied in place. Returns a
// short description, or "" when the picked mutation does not apply to
// this plan (caller retries with the next roll).
std::string Mutate(core::CompiledPlan* plan, Rng* rng) {
  switch (rng->NextBounded(8)) {
    case 0: {  // swap two matching-order entries
      if (plan->order.size() < 2) return "";
      const std::size_t a = rng->NextBounded(plan->order.size());
      const std::size_t b = rng->NextBounded(plan->order.size());
      if (a == b) return "";
      std::swap(plan->order[a], plan->order[b]);
      return "swap order[" + std::to_string(a) + "],order[" +
             std::to_string(b) + "]";
    }
    case 1: {  // drop one symmetry restriction
      for (std::size_t i = 0; i < plan->levels.size(); ++i) {
        if (!plan->levels[i].restrictions.empty()) {
          plan->levels[i].restrictions.pop_back();
          return "drop restriction at level " + std::to_string(i);
        }
      }
      return "";
    }
    case 2: {  // flip the folded (0,1) edge-parallel restriction
      if (plan->start != core::StartMode::kEdgeParallel) return "";
      plan->start_ascending = !plan->start_ascending;
      return "flip start_ascending";
    }
    case 3: {  // flip one level's folded ascending chain
      if (plan->levels.empty()) return "";
      const std::size_t i = rng->NextBounded(plan->levels.size());
      plan->levels[i].require_ascending =
          !plan->levels[i].require_ascending;
      return "flip require_ascending at level " + std::to_string(i);
    }
    case 4: {  // drop injectivity enforcement
      for (std::size_t i = 0; i < plan->levels.size(); ++i) {
        if (plan->levels[i].enforce_injective) {
          plan->levels[i].enforce_injective = false;
          return "clear enforce_injective at level " + std::to_string(i);
        }
      }
      return "";
    }
    case 5: {  // drop one intersection column
      if (plan->levels.empty()) return "";
      const std::size_t i = rng->NextBounded(plan->levels.size());
      if (plan->levels[i].intersect_positions.empty()) return "";
      plan->levels[i].intersect_positions.pop_back();
      return "drop intersect column at level " + std::to_string(i);
    }
    case 6: {  // lie about the automorphism count
      plan->automorphisms += 1 + rng->NextBounded(3);
      return "perturb automorphisms";
    }
    default: {  // claim symmetry was (not) broken
      plan->symmetry_broken = !plan->symmetry_broken;
      return "flip symmetry_broken";
    }
  }
}

struct OracleCounts {
  uint64_t embeddings = 0;
  uint64_t instances = 0;
};

bool CountsMatch(const core::CompiledRunResult& run,
                 const core::CompiledPlan& plan, const OracleCounts& oracle,
                 std::string* why) {
  const uint64_t want_embeddings =
      plan.symmetry_broken ? oracle.instances : oracle.embeddings;
  if (run.embeddings != want_embeddings) {
    *why = "embeddings " + std::to_string(run.embeddings) + " != oracle " +
           std::to_string(want_embeddings);
    return false;
  }
  if (run.instances != oracle.instances) {
    *why = "instances " + std::to_string(run.instances) + " != oracle " +
           std::to_string(oracle.instances);
    return false;
  }
  return true;
}

// Executes `plan` on a fresh simulated device. The engine's Run gate
// re-verifies; by construction callers only pass verifier-accepted plans.
Result<core::CompiledRunResult> Execute(graph::Graph* g,
                                        const core::CompiledPlan& plan) {
  gpusim::SimParams params;
  params.device_memory_bytes = 16 << 20;
  params.um_device_buffer_bytes = 2 << 20;
  gpusim::Device device(params);
  core::GammaEngine engine(&device, g, {});
  if (Status st = engine.Prepare(); !st.ok()) return st;
  return core::CompiledEngine(&engine).Run(plan);
}

void WriteReport(const std::string& path, const FuzzOptions& o,
                 int patterns_run, int mutants_refuted,
                 int mutants_benign) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return;
  }
  out << "{\n \"schema\": \"gamma.fuzz.v1\",\n";
  out << " \"seed\": " << o.seed << ",\n";
  out << " \"patterns\": " << patterns_run << ",\n";
  out << " \"mutants_refuted\": " << mutants_refuted << ",\n";
  out << " \"mutants_benign\": " << mutants_benign << ",\n";
  out << " \"failures\": [";
  for (std::size_t i = 0; i < g_failures.size(); ++i) {
    if (i > 0) out << ",";
    out << "\n  {\"kind\": \"" << g_failures[i].kind
        << "\", \"pattern\": \"" << g_failures[i].pattern
        << "\", \"detail\": \"" << g_failures[i].detail << "\"}";
  }
  if (!g_failures.empty()) out << "\n ";
  out << "]\n}\n";
  std::printf("fuzz report written to %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  FuzzOptions o;
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (a == "--patterns") {
      o.patterns = std::atoi(next());
    } else if (a == "--seed") {
      o.seed = std::strtoull(next(), nullptr, 10);
    } else if (a == "--max-vertices") {
      o.max_vertices = std::atoi(next());
    } else if (a == "--mutants") {
      o.mutants_per_plan = std::atoi(next());
    } else if (a == "--report") {
      o.report_path = next();
    } else if (a == "--verbose") {
      o.verbose = true;
    } else {
      std::fprintf(stderr,
                   "usage: fuzz_patterns [--patterns N] [--seed S] "
                   "[--max-vertices K] [--mutants M] [--report F] "
                   "[--verbose]\n");
      return 1;
    }
  }
  if (o.max_vertices < 2 ||
      o.max_vertices > graph::Pattern::kMaxVertices) {
    std::fprintf(stderr, "--max-vertices wants 2..%d\n",
                 graph::Pattern::kMaxVertices);
    return 1;
  }

  // Small fixed data graph: big enough for nonzero counts, small enough
  // that the O(V * d^k) backtracking oracle stays fast at k = 5.
  Rng graph_rng(0xfa115eedull ^ o.seed);
  graph::Graph g = graph::ErdosRenyi(128, 512, &graph_rng);
  graph::AssignLabelsZipf(&g, 4, 0.4, &graph_rng);
  g.EnsureEdgeIndex();
  std::printf("fuzz graph: %s\n", g.DebugString().c_str());

  core::PatternCompiler compiler(&g);
  core::ExtensionOptions default_extension;
  core::VerifyOptions vopts;
  vopts.graph = &g;
  vopts.engine_extension = &default_extension;
  core::PlanVerifier verifier(vopts);

  Rng rng(o.seed);
  int mutants_refuted = 0, mutants_benign = 0;
  for (int iter = 0; iter < o.patterns; ++iter) {
    const graph::Pattern pattern =
        RandomPattern(&rng, o.max_vertices, g.num_labels());
    const core::CompileOptions copts = RandomCompileOptions(&rng);
    auto compiled = compiler.CompileMatch(pattern, copts);
    if (!compiled.ok()) {
      Fail("compile", pattern, compiled.status().ToString());
      continue;
    }
    const core::CompiledPlan& plan = compiled.value();
    if (o.verbose) {
      std::printf("#%d %s -> %s\n", iter, pattern.DebugString().c_str(),
                  plan.DebugString().c_str());
    }

    // Every compiler-emitted plan must discharge every obligation.
    const core::VerifyReport report = verifier.Verify(plan);
    if (!report.verified) {
      Fail("verify-clean", pattern, report.ReportText());
      continue;
    }

    // gamma.plan.v1 round trip must be byte-identical.
    const std::string doc = plan.ToJson();
    auto reparsed = core::ParsePlanJson(doc);
    if (!reparsed.ok()) {
      Fail("roundtrip-parse", pattern, reparsed.status().ToString());
    } else if (reparsed.value().ToJson() != doc) {
      Fail("roundtrip-bytes", pattern,
           "re-serialized plan differs from original document");
    }

    // Differential check against the CPU backtracking oracle.
    OracleCounts oracle;
    oracle.embeddings = graph::CountEmbeddings(g, pattern);
    oracle.instances = graph::CountInstances(g, pattern);
    auto run = Execute(&g, plan);
    if (!run.ok()) {
      Fail("run-clean", pattern, run.status().ToString());
      continue;
    }
    std::string why;
    if (!CountsMatch(run.value(), plan, oracle, &why)) {
      Fail("oracle-clean", pattern, why);
      continue;
    }

    // Mutant loop: corrupted plans must be refuted, or — if the
    // corruption happens to be semantically harmless — still match the
    // oracle when executed.
    for (int m = 0; m < o.mutants_per_plan; ++m) {
      core::CompiledPlan mutant = plan;
      std::string what;
      for (int tries = 0; tries < 8 && what.empty(); ++tries) {
        what = Mutate(&mutant, &rng);
      }
      if (what.empty()) continue;
      const core::VerifyReport mreport = verifier.Verify(mutant);
      if (!mreport.verified) {
        ++mutants_refuted;  // refuted mutants are never executed
        continue;
      }
      auto mrun = Execute(&g, mutant);
      if (!mrun.ok()) {
        Fail("run-mutant", pattern,
             what + ": accepted mutant failed to run: " +
                 mrun.status().ToString());
        continue;
      }
      if (!CountsMatch(mrun.value(), mutant, oracle, &why)) {
        Fail("oracle-mutant", pattern,
             what + ": verifier accepted a count-changing mutant: " + why);
        continue;
      }
      ++mutants_benign;
    }
  }

  std::printf(
      "fuzz: %d patterns, %d mutants refuted, %d benign mutants "
      "matched oracle, %zu failure(s)\n",
      o.patterns, mutants_refuted, mutants_benign, g_failures.size());
  if (!o.report_path.empty()) {
    WriteReport(o.report_path, o, o.patterns, mutants_refuted,
                mutants_benign);
  }
  return g_failures.empty() ? 0 : 1;
}
