#!/usr/bin/env python3
"""Validates a gamma.bench.v1 document produced by a bench binary's
--json=<file> mode. Exits non-zero (with a message per problem) when the
document deviates from the schema, so CI fails loudly instead of archiving
a broken artifact. Stdlib only; also usable locally:

    ./build/bench/bench_fig10_memory --json=out.json
    python3 tools/validate_bench_json.py out.json
"""

import json
import sys

REQUIRED_RUN_KEYS = {
    "name": str,
    "skipped": bool,
    "sim_millis": (int, float),
    "cycles": (int, float),
    "params": dict,
    "peak_device_bytes": (int, float),
    "peak_host_bytes": (int, float),
    "link_busy_cycles": (int, float),
    "counters": dict,
    "phases": list,
}

REQUIRED_PARAM_KEYS = {
    "device_memory_bytes": (int, float),
    "um_device_buffer_bytes": (int, float),
    "num_warp_slots": (int, float),
    "streams": (int, float),
}

# Every DeviceStats counter exported via Fields(); keep in sync with
# src/gpusim/stats.cc (the C++ tests enforce the same list from the
# other side, via DeviceStats::Fields()).
COUNTER_KEYS = [
    "kernel_launches",
    "warp_tasks",
    "um_page_faults",
    "um_page_hits",
    "um_migrated_bytes",
    "um_evictions",
    "zc_transactions",
    "zc_bytes",
    "device_reads",
    "device_read_bytes",
    "device_writes",
    "device_write_bytes",
    "explicit_h2d_bytes",
    "explicit_d2h_bytes",
    "pool_block_requests",
    "pool_blocks_wasted",
]


def fail(errors, msg):
    errors.append(msg)


def check_typed_keys(errors, obj, spec, ctx):
    for key, want in spec.items():
        if key not in obj:
            fail(errors, f"{ctx}: missing key '{key}'")
        elif not isinstance(obj[key], want):
            fail(errors, f"{ctx}: '{key}' has type {type(obj[key]).__name__}")


def validate(doc):
    errors = []
    if not isinstance(doc, dict):
        return ["top-level value is not an object"]
    if doc.get("schema") != "gamma.bench.v1":
        fail(errors, f"schema is {doc.get('schema')!r}, want 'gamma.bench.v1'")
    if not isinstance(doc.get("binary"), str) or not doc.get("binary"):
        fail(errors, "missing or empty 'binary'")
    runs = doc.get("runs")
    if not isinstance(runs, list):
        return errors + ["'runs' is missing or not an array"]
    if not runs:
        fail(errors, "'runs' is empty — no benchmark executed")
    for i, run in enumerate(runs):
        ctx = f"runs[{i}]"
        if not isinstance(run, dict):
            fail(errors, f"{ctx}: not an object")
            continue
        ctx = f"runs[{i}] ({run.get('name', '?')})"
        check_typed_keys(errors, run, REQUIRED_RUN_KEYS, ctx)
        if run.get("skipped") and not run.get("error"):
            fail(errors, f"{ctx}: skipped without an 'error' message")
        if isinstance(run.get("params"), dict):
            check_typed_keys(errors, run["params"], REQUIRED_PARAM_KEYS,
                             f"{ctx}.params")
        counters = run.get("counters")
        if isinstance(counters, dict):
            for key in COUNTER_KEYS:
                if key not in counters:
                    fail(errors, f"{ctx}.counters: missing '{key}'")
            for key in counters:
                if key not in COUNTER_KEYS:
                    fail(errors, f"{ctx}.counters: unknown '{key}'")
        for j, phase in enumerate(run.get("phases") or []):
            pctx = f"{ctx}.phases[{j}]"
            if not isinstance(phase, dict):
                fail(errors, f"{pctx}: not an object")
                continue
            check_typed_keys(
                errors, phase,
                {"name": str, "invocations": (int, float),
                 "cycles": (int, float)}, pctx)
        if not run.get("skipped") and isinstance(run.get("cycles"),
                                                 (int, float)):
            if run["cycles"] <= 0:
                fail(errors, f"{ctx}: completed run with cycles <= 0")
        if isinstance(run.get("link_busy_cycles"), (int, float)):
            if run["link_busy_cycles"] < 0:
                fail(errors, f"{ctx}: negative link_busy_cycles")
        # Skipped (crashed) runs and legacy benches that never call
        # ReportProfile leave params zeroed; require the default stream
        # only when a device was actually reported (cycles > 0).
        if (not run.get("skipped")
                and isinstance(run.get("cycles"), (int, float))
                and run["cycles"] > 0
                and isinstance(run.get("params"), dict)
                and isinstance(run["params"].get("streams"), (int, float))):
            if run["params"]["streams"] < 1:
                fail(errors,
                     f"{ctx}.params: streams < 1 (default stream missing)")
    return errors


def main(argv):
    if len(argv) != 2:
        print(f"usage: {argv[0]} <bench.json>", file=sys.stderr)
        return 2
    try:
        with open(argv[1], encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"{argv[1]}: {e}", file=sys.stderr)
        return 1
    errors = validate(doc)
    if errors:
        for msg in errors:
            print(f"{argv[1]}: {msg}", file=sys.stderr)
        return 1
    n = len(doc["runs"])
    skipped = sum(1 for r in doc["runs"] if r.get("skipped"))
    print(f"{argv[1]}: OK — {n} runs ({skipped} skipped), "
          f"binary {doc['binary']}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
