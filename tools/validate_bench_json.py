#!/usr/bin/env python3
"""Validates the versioned JSON documents the repo's tooling emits,
dispatching on the document's `schema` field:

  gamma.bench.v1       bench binaries' --json=<file> export
  gamma.adaptivity.v1  gamma_cli --adaptivity-out audit
  gamma.metrics.v1     gamma_cli --metrics-out counter time-series
  gamma.check.v1       gamma_cli --check-out sanitizer report
  gamma.critpath.v1    gamma_cli --critpath-out bottleneck analysis
  gamma.plan.v1        gamma_cli --plan-out compiled pattern plan
  gamma.planprof.v1    gamma_cli --planprof-out plan-execution audit
  gamma.verify.v1      gamma_cli --verify-plan=json obligation report
  gamma.fuzz.v1        tools/fuzz_patterns --report findings summary

Exits non-zero (with a message per problem) when the document deviates
from its schema, so CI fails loudly instead of archiving a broken
artifact. With --expect-clean, a structurally valid gamma.check.v1
report that contains findings also fails — that is how CI turns "the
sanitizer saw something" into a red build. Likewise --expect-verified
fails a structurally valid gamma.verify.v1 report whose plan was
refuted. Stdlib only; also usable locally:

    ./build/bench/bench_fig10_memory --json=out.json
    python3 tools/validate_bench_json.py out.json
    ./build/examples/gamma_cli --check --check-out check.json ...
    python3 tools/validate_bench_json.py --expect-clean check.json
    ./build/examples/gamma_cli --verify-plan=json plan.json > verify.json
    python3 tools/validate_bench_json.py --expect-verified verify.json
"""

import json
import sys

REQUIRED_RUN_KEYS = {
    "name": str,
    "skipped": bool,
    "sim_millis": (int, float),
    "cycles": (int, float),
    "wall_clock_ms": (int, float),
    "params": dict,
    "peak_device_bytes": (int, float),
    "peak_host_bytes": (int, float),
    "link_busy_cycles": (int, float),
    "counters": dict,
    "phases": list,
}

REQUIRED_PARAM_KEYS = {
    "device_memory_bytes": (int, float),
    "um_device_buffer_bytes": (int, float),
    "num_warp_slots": (int, float),
    "streams": (int, float),
    "host_threads": (int, float),
}

# Every DeviceStats counter exported via Fields(); keep in sync with
# src/gpusim/stats.cc (the C++ tests enforce the same list from the
# other side, via DeviceStats::Fields()).
COUNTER_KEYS = [
    "kernel_launches",
    "warp_tasks",
    "um_page_faults",
    "um_page_hits",
    "um_migrated_bytes",
    "um_evictions",
    "zc_transactions",
    "zc_bytes",
    "device_reads",
    "device_read_bytes",
    "device_writes",
    "device_write_bytes",
    "explicit_h2d_bytes",
    "explicit_d2h_bytes",
    "pool_block_requests",
    "pool_blocks_wasted",
]


# Whole-run totals a bench run embeds when it ran with an adaptivity
# audit attached (see core::AdaptivitySummary).
ADAPTIVITY_SUMMARY_KEYS = {
    "extensions": (int, float),
    "mean_unified_pages": (int, float),
    "plan_cycles": (int, float),
    "actual_access_cycles": (int, float),
    "est_unified_cycles": (int, float),
    "est_zerocopy_cycles": (int, float),
    "regret_cycles": (int, float),
}

# Per-shadow counterfactual counters (see core::ShadowCounters).
SHADOW_KEYS = {
    "cycles": (int, float),
    "um_page_faults": (int, float),
    "um_page_hits": (int, float),
    "um_migrated_bytes": (int, float),
    "um_evictions": (int, float),
    "zc_transactions": (int, float),
    "zc_bytes": (int, float),
}

# gamma-prof resource taxonomy, in canonical (fold) order. Keep in sync
# with src/gpusim/resource_class.h — the order matters: exact-sum checks
# below replicate the C++ left-to-right fold bit-for-bit (JSON doubles are
# emitted with %.17g, so they round-trip exactly).
RESOURCE_CLASSES = ["compute", "dram", "pcie", "um", "sort", "sync_idle"]

WHATIF_KEYS = {
    "resource": str,
    "cost_factor": (int, float),
    "projected_cycles": (int, float),
    "speedup": (int, float),
}


# Pattern-compiler vocabulary (keep in sync with
# src/core/pattern_compiler.cc PlanKindName/StartModeName and
# src/core/extension.cc WriteStrategyName).
PLAN_KINDS = ("subgraph-match", "motif-census", "frequent-mining",
              "edge-join")
PLAN_START_MODES = ("vertex-parallel", "edge-parallel")
PLAN_WRITE_STRATEGIES = ("inherit", "naive-two-pass", "prealloc",
                         "dynamic-alloc")

# Compact per-run plan descriptor embedded in gamma.bench.v1 documents
# (see core::PlanSummary). All values are exact, so compare_bench_json.py
# diffs them with zero tolerance.
PLAN_SUMMARY_KEYS = {
    "kind": str,
    "order": list,
    "levels": (int, float),
    "symmetry_broken": bool,
}

# Planner rationale objects in gamma.plan.v1 (see
# core::CompiledPlan::ToJson) — the raw estimates and rule outcomes
# behind the start-mode and per-level strategy choices.
PLAN_START_RATIONALE_KEYS = {
    "input_aware": bool,
    "est_start_rows": (int, float),
    "est_pair_rows": (int, float),
    "edge_parallel_foldable": bool,
    "edge_parallel_profitable": bool,
}
PLAN_LEVEL_RATIONALE_KEYS = {
    "intersect_width": int,
    "prealloc_threshold": (int, float),
    "write_strategy_rule": str,
    "pre_merge_rule": str,
}
PLAN_WRITE_STRATEGY_RULES = ("inherit", "est_rows>=threshold",
                             "est_rows<threshold")
PLAN_PRE_MERGE_RULES = ("inherit", "intersect_width>=2",
                        "intersect_width<2")

# gamma.planprof.v1 vocabulary (see core::PlanProfiler::ToJson).
# FPM / edge-join runs start from the materialized edge table, which has
# no vertex-parallel / edge-parallel distinction.
PLANPROF_START_MODES = PLAN_START_MODES + ("edge-table",)
PLANPROF_STRATEGY_SOURCES = ("plan", "inherit")
PLANPROF_LEVEL_KEYS = {
    "label": str,
    "depth": int,
    "has_estimate": bool,
    "est_rows": (int, float),
    "input_rows": (int, float),
    "candidates": (int, float),
    "rows": (int, float),
    "q_error": (int, float),
    "selectivity": (int, float),
    "intersect_width": int,
    "union_extension": bool,
    "cycles": (int, float),
    "counters": dict,
    "kernels": (int, float),
    "tasks": (int, float),
    "task_max_cycles": (int, float),
    "task_total_cycles": (int, float),
    "slots": dict,
}
PLANPROF_SUMMARY_LEVEL_KEYS = {
    "label": str,
    "depth": int,
    "has_estimate": bool,
    "est_rows": (int, float),
    "rows": (int, float),
    "q_error": (int, float),
}


def q_error(est_rows, rows):
    """core::PlanProfiler's Q-error, bit-for-bit: both sides clamped at
    one row, so empty levels and sub-row estimates stay finite."""
    e = max(float(est_rows), 1.0)
    r = max(float(rows), 1.0)
    return max(e / r, r / e)


def check_counters_exact(errors, counters, ctx):
    """A DeviceStats map must carry exactly the known counter keys."""
    if not isinstance(counters, dict):
        fail(errors, f"{ctx}: not an object")
        return
    for key in COUNTER_KEYS:
        if not isinstance(counters.get(key), (int, float)):
            fail(errors, f"{ctx}: missing or mistyped '{key}'")
    for key in counters:
        if key not in COUNTER_KEYS:
            fail(errors, f"{ctx}: unknown counter '{key}'")


def check_planprof_slots(errors, slots, ctx):
    """Per-warp-slot histogram: count/max/mean/imbalance must reproduce
    the C++ left-to-right fold over busy_cycles exactly."""
    if not isinstance(slots, dict):
        fail(errors, f"{ctx}: not an object")
        return None
    check_typed_keys(
        errors, slots,
        {"count": (int, float), "busy_cycles": list, "max": (int, float),
         "mean": (int, float), "imbalance": (int, float)}, ctx)
    hist = slots.get("busy_cycles")
    if not isinstance(hist, list) \
            or not all(isinstance(v, (int, float)) for v in hist):
        fail(errors, f"{ctx}.busy_cycles: want an array of numbers")
        return None
    if slots.get("count") != len(hist):
        fail(errors, f"{ctx}: count {slots.get('count')!r} != "
             f"{len(hist)} busy_cycles entries")
    want_max = max(hist) if hist else 0.0
    want_mean = 0.0
    if hist:
        total = 0.0
        for v in hist:
            total += v
        want_mean = total / len(hist)
    if slots.get("max") != want_max:
        fail(errors, f"{ctx}: max {slots.get('max')!r}, want {want_max!r}")
    if slots.get("mean") != want_mean:
        fail(errors, f"{ctx}: mean {slots.get('mean')!r}, want "
             f"{want_mean!r}")
    want_imb = want_max / want_mean if want_max > 0 and want_mean > 0 \
        else 0.0
    if slots.get("imbalance") != want_imb:
        fail(errors, f"{ctx}: imbalance {slots.get('imbalance')!r}, want "
             f"{want_imb!r}")
    return hist


def check_planprof_summary_obj(errors, summary, want_levels, ctx):
    """Summary digest (also embedded in gamma.bench.v1 runs): when the
    full per-level list is at hand, the worst Q-error and the per-level
    echo must agree with it exactly."""
    if not isinstance(summary, dict):
        fail(errors, f"{ctx}: not an object")
        return
    check_typed_keys(
        errors, summary,
        {"worst_q_error": (int, float),
         "worst_q_error_depth": int,
         "imbalance": (int, float), "levels": list}, ctx)
    levels = summary.get("levels")
    if not isinstance(levels, list):
        return
    for i, level in enumerate(levels):
        lctx = f"{ctx}.levels[{i}]"
        if not isinstance(level, dict):
            fail(errors, f"{lctx}: not an object")
            continue
        check_typed_keys(errors, level, PLANPROF_SUMMARY_LEVEL_KEYS, lctx)
    if want_levels is None:
        return
    worst = 0.0
    worst_depth = 0
    digest = []
    for seg in want_levels:
        if not isinstance(seg, dict):
            return  # the levels array already failed validation
        if seg.get("has_estimate") and \
                isinstance(seg.get("q_error"), (int, float)) and \
                seg["q_error"] > worst:
            worst = seg["q_error"]
            worst_depth = seg.get("depth")
        digest.append({key: seg.get(key)
                       for key in PLANPROF_SUMMARY_LEVEL_KEYS})
    if summary.get("worst_q_error") != worst:
        fail(errors, f"{ctx}: worst_q_error "
             f"{summary.get('worst_q_error')!r}, want {worst!r}")
    elif worst > 0 and summary.get("worst_q_error_depth") != worst_depth:
        fail(errors, f"{ctx}: worst_q_error_depth "
             f"{summary.get('worst_q_error_depth')!r}, want "
             f"{worst_depth!r}")
    stripped = [{key: level.get(key) for key in PLANPROF_SUMMARY_LEVEL_KEYS}
                for level in levels if isinstance(level, dict)]
    if stripped != digest:
        fail(errors, f"{ctx}.levels: digest does not match the per-level "
             f"records")


def validate_planprof(doc):
    errors = []
    if not isinstance(doc, dict):
        return ["top-level value is not an object"]
    if doc.get("schema") != "gamma.planprof.v1":
        fail(errors, f"schema is {doc.get('schema')!r}, want "
             f"'gamma.planprof.v1'")
    check_typed_keys(
        errors, doc,
        {"kind": str, "start_mode": str, "order": list, "finished": bool,
         "partial": bool, "dropped_commands": (int, float),
         "attribution_available": bool, "total_cycles": (int, float),
         "levels": list, "summary": dict}, "document")
    if doc.get("kind") not in PLAN_KINDS:
        fail(errors, f"unknown kind {doc.get('kind')!r}")
    if doc.get("start_mode") not in PLANPROF_START_MODES:
        fail(errors, f"unknown start_mode {doc.get('start_mode')!r}")
    if not doc.get("finished"):
        fail(errors, "finished is false — aborted runs have no document")
    levels = doc.get("levels")
    if not isinstance(levels, list):
        return errors + ["'levels' is missing or not an array"]
    if not levels:
        fail(errors, "'levels' is empty — every run has a start segment")
    run_hist = []
    for i, level in enumerate(levels):
        ctx = f"levels[{i}]"
        if not isinstance(level, dict):
            fail(errors, f"{ctx}: not an object")
            continue
        ctx = f"levels[{i}] ({level.get('label', '?')})"
        check_typed_keys(errors, level, PLANPROF_LEVEL_KEYS, ctx)
        est = level.get("est_rows")
        rows = level.get("rows")
        if isinstance(est, (int, float)) and est < 0:
            fail(errors, f"{ctx}: negative est_rows")
        # Q-error is the exact clamped ratio when an estimate exists,
        # and exactly zero when none does.
        if isinstance(est, (int, float)) and est >= 0 \
                and isinstance(rows, (int, float)) \
                and isinstance(level.get("q_error"), (int, float)):
            want = q_error(est, rows) if level.get("has_estimate") else 0.0
            if level["q_error"] != want:
                fail(errors, f"{ctx}: q_error {level['q_error']!r}, want "
                     f"{want!r}")
        cand = level.get("candidates")
        if isinstance(cand, (int, float)) \
                and isinstance(rows, (int, float)) \
                and isinstance(level.get("selectivity"), (int, float)):
            want = rows / cand if cand > 0 else 0.0
            if level["selectivity"] != want:
                fail(errors, f"{ctx}: selectivity "
                     f"{level['selectivity']!r}, want {want!r}")
        strategy = level.get("strategy")
        if strategy is not None:
            sctx = f"{ctx}.strategy"
            if not isinstance(strategy, dict):
                fail(errors, f"{sctx}: not an object")
            else:
                check_typed_keys(
                    errors, strategy,
                    {"write_strategy": str, "write_strategy_source": str,
                     "pre_merge": bool, "pre_merge_source": str,
                     "count_only": bool}, sctx)
                if strategy.get("write_strategy") not in \
                        PLAN_WRITE_STRATEGIES[1:]:
                    fail(errors, f"{sctx}: unknown write_strategy "
                         f"{strategy.get('write_strategy')!r}")
                for key in ("write_strategy_source", "pre_merge_source"):
                    if strategy.get(key) not in PLANPROF_STRATEGY_SOURCES:
                        fail(errors, f"{sctx}: {key} must be 'plan' or "
                             f"'inherit'")
        check_counters_exact(errors, level.get("counters"),
                             f"{ctx}.counters")
        attribution = level.get("attribution")
        if attribution is not None:
            if not doc.get("attribution_available"):
                fail(errors, f"{ctx}: attributed level in a document with "
                     f"attribution_available false")
            attr = check_resource_cycles(errors, attribution,
                                         f"{ctx}.attribution")
            cycles = level.get("cycles")
            if attr is not None and isinstance(cycles, (int, float)):
                if fold_sum(attr) != cycles:
                    fail(errors, f"{ctx}.attribution: fold-sum "
                         f"{fold_sum(attr)!r} != cycles {cycles!r} "
                         f"(attribution must be exact)")
            if level.get("binding") not in RESOURCE_CLASSES:
                fail(errors, f"{ctx}: unknown binding "
                     f"{level.get('binding')!r}")
        elif "binding" in level:
            fail(errors, f"{ctx}: binding without attribution")
        hist = check_planprof_slots(errors, level.get("slots"),
                                    f"{ctx}.slots")
        if hist is not None:
            if len(run_hist) < len(hist):
                run_hist.extend([0.0] * (len(hist) - len(run_hist)))
            for s, v in enumerate(hist):
                run_hist[s] += v
    check_planprof_summary_obj(errors, doc.get("summary"), levels,
                               "summary")
    # The run-level imbalance folds the per-level histograms elementwise,
    # mirroring core::PlanProfiler::Summary bit-for-bit.
    summary = doc.get("summary")
    if not errors and isinstance(summary, dict):
        want_max = max(run_hist) if run_hist else 0.0
        want_mean = 0.0
        if run_hist:
            total = 0.0
            for v in run_hist:
                total += v
            want_mean = total / len(run_hist)
        want_imb = want_max / want_mean \
            if want_max > 0 and want_mean > 0 else 0.0
        if summary.get("imbalance") != want_imb:
            fail(errors, f"summary: imbalance "
                 f"{summary.get('imbalance')!r}, want {want_imb!r}")
    return errors


def check_plan_summary(errors, plan, ctx):
    """The 'plan' object a bench run embeds when it ran a compiled plan."""
    if not isinstance(plan, dict):
        fail(errors, f"{ctx}: not an object")
        return
    check_typed_keys(errors, plan, PLAN_SUMMARY_KEYS, ctx)
    if plan.get("kind") not in PLAN_KINDS:
        fail(errors, f"{ctx}: unknown kind {plan.get('kind')!r}")
    if isinstance(plan.get("order"), list):
        for v in plan["order"]:
            if not isinstance(v, int):
                fail(errors, f"{ctx}.order: non-integer entry {v!r}")
                break
    if isinstance(plan.get("levels"), (int, float)) and plan["levels"] < 0:
        fail(errors, f"{ctx}: negative levels")


def fold_sum(attribution):
    """The canonical left-to-right fold over the class order."""
    total = 0.0
    for key in RESOURCE_CLASSES:
        total += attribution[key]
    return total


def check_resource_cycles(errors, obj, ctx):
    """Exact-keyed per-class cycle map; returns it when well-formed."""
    if not isinstance(obj, dict):
        fail(errors, f"{ctx}: not an object")
        return None
    ok = True
    for key in RESOURCE_CLASSES:
        if not isinstance(obj.get(key), (int, float)):
            fail(errors, f"{ctx}: missing or mistyped '{key}'")
            ok = False
    for key in obj:
        if key not in RESOURCE_CLASSES:
            fail(errors, f"{ctx}: unknown resource class '{key}'")
            ok = False
    return obj if ok else None


def check_whatifs(errors, whatifs, partial, anchor_cycles, ctx):
    """Shared what-if panel rules: suppressed when partial, and the
    factor-1.0 identity row must reproduce `anchor_cycles` exactly."""
    if not isinstance(whatifs, list):
        fail(errors, f"{ctx}: not an array")
        return
    if partial:
        if whatifs:
            fail(errors, f"{ctx}: what-ifs must be suppressed on a "
                 f"partial log")
        return
    if not whatifs:
        fail(errors, f"{ctx}: empty — the identity row is required")
        return
    for i, wi in enumerate(whatifs):
        wctx = f"{ctx}[{i}]"
        if not isinstance(wi, dict):
            fail(errors, f"{wctx}: not an object")
            continue
        check_typed_keys(errors, wi, WHATIF_KEYS, wctx)
        if wi.get("resource") not in RESOURCE_CLASSES:
            fail(errors, f"{wctx}: unknown resource {wi.get('resource')!r}")
    head = whatifs[0]
    if isinstance(head, dict) and head.get("cost_factor") == 1.0:
        if head.get("projected_cycles") != anchor_cycles:
            fail(errors, f"{ctx}[0]: identity projection "
                 f"{head.get('projected_cycles')!r} != critical path "
                 f"{anchor_cycles!r} (factor 1.0 must be exact)")
    else:
        fail(errors, f"{ctx}[0]: first row must be the factor-1.0 "
             f"identity projection")


def check_bottleneck(errors, bn, ctx):
    """Per-run bottleneck summary embedded in gamma.bench.v1 documents."""
    if not isinstance(bn, dict):
        fail(errors, f"{ctx}: not an object")
        return
    check_typed_keys(
        errors, bn,
        {"partial": bool, "critical_path_cycles": (int, float),
         "binding": str, "pcie_link_utilization": (int, float),
         "resource_cycles": dict, "whatif": list}, ctx)
    if bn.get("binding") not in RESOURCE_CLASSES:
        fail(errors, f"{ctx}: unknown binding {bn.get('binding')!r}")
    cycles = bn.get("critical_path_cycles")
    attribution = check_resource_cycles(errors, bn.get("resource_cycles"),
                                        f"{ctx}.resource_cycles")
    if attribution is not None and isinstance(cycles, (int, float)):
        if fold_sum(attribution) != cycles:
            fail(errors, f"{ctx}.resource_cycles: fold-sum "
                 f"{fold_sum(attribution)!r} != critical_path_cycles "
                 f"{cycles!r} (attribution must be exact)")
    check_whatifs(errors, bn.get("whatif"), bn.get("partial"), cycles,
                  f"{ctx}.whatif")


def fail(errors, msg):
    errors.append(msg)


def check_typed_keys(errors, obj, spec, ctx):
    for key, want in spec.items():
        if key not in obj:
            fail(errors, f"{ctx}: missing key '{key}'")
        elif not isinstance(obj[key], want):
            fail(errors, f"{ctx}: '{key}' has type {type(obj[key]).__name__}")


def validate(doc):
    errors = []
    if not isinstance(doc, dict):
        return ["top-level value is not an object"]
    if doc.get("schema") != "gamma.bench.v1":
        fail(errors, f"schema is {doc.get('schema')!r}, want 'gamma.bench.v1'")
    if not isinstance(doc.get("binary"), str) or not doc.get("binary"):
        fail(errors, "missing or empty 'binary'")
    runs = doc.get("runs")
    if not isinstance(runs, list):
        return errors + ["'runs' is missing or not an array"]
    if not runs:
        fail(errors, "'runs' is empty — no benchmark executed")
    for i, run in enumerate(runs):
        ctx = f"runs[{i}]"
        if not isinstance(run, dict):
            fail(errors, f"{ctx}: not an object")
            continue
        ctx = f"runs[{i}] ({run.get('name', '?')})"
        check_typed_keys(errors, run, REQUIRED_RUN_KEYS, ctx)
        if run.get("skipped") and not run.get("error"):
            fail(errors, f"{ctx}: skipped without an 'error' message")
        if isinstance(run.get("params"), dict):
            check_typed_keys(errors, run["params"], REQUIRED_PARAM_KEYS,
                             f"{ctx}.params")
        bottleneck = run.get("bottleneck")
        if bottleneck is not None:
            check_bottleneck(errors, bottleneck, f"{ctx}.bottleneck")
        adaptivity = run.get("adaptivity")
        if adaptivity is not None:
            if not isinstance(adaptivity, dict):
                fail(errors, f"{ctx}.adaptivity: not an object")
            else:
                check_typed_keys(errors, adaptivity,
                                 ADAPTIVITY_SUMMARY_KEYS,
                                 f"{ctx}.adaptivity")
        plan = run.get("plan")
        if plan is not None:
            check_plan_summary(errors, plan, f"{ctx}.plan")
        planprof = run.get("planprof")
        if planprof is not None:
            # The embedded digest has no per-level slot histograms, so
            # only its shape and summary-level types are checkable here.
            check_planprof_summary_obj(errors, planprof, None,
                                       f"{ctx}.planprof")
        counters = run.get("counters")
        if isinstance(counters, dict):
            for key in COUNTER_KEYS:
                if key not in counters:
                    fail(errors, f"{ctx}.counters: missing '{key}'")
            for key in counters:
                if key not in COUNTER_KEYS:
                    fail(errors, f"{ctx}.counters: unknown '{key}'")
        for j, phase in enumerate(run.get("phases") or []):
            pctx = f"{ctx}.phases[{j}]"
            if not isinstance(phase, dict):
                fail(errors, f"{pctx}: not an object")
                continue
            check_typed_keys(
                errors, phase,
                {"name": str, "invocations": (int, float),
                 "cycles": (int, float)}, pctx)
        if not run.get("skipped") and isinstance(run.get("cycles"),
                                                 (int, float)):
            if run["cycles"] <= 0:
                fail(errors, f"{ctx}: completed run with cycles <= 0")
        if isinstance(run.get("link_busy_cycles"), (int, float)):
            if run["link_busy_cycles"] < 0:
                fail(errors, f"{ctx}: negative link_busy_cycles")
        if isinstance(run.get("wall_clock_ms"), (int, float)):
            if run["wall_clock_ms"] < 0:
                fail(errors, f"{ctx}: negative wall_clock_ms")
        # Skipped (crashed) runs and legacy benches that never call
        # ReportProfile leave params zeroed; require the default stream
        # only when a device was actually reported (cycles > 0).
        if (not run.get("skipped")
                and isinstance(run.get("cycles"), (int, float))
                and run["cycles"] > 0
                and isinstance(run.get("params"), dict)
                and isinstance(run["params"].get("streams"), (int, float))):
            if run["params"]["streams"] < 1:
                fail(errors,
                     f"{ctx}.params: streams < 1 (default stream missing)")
        if (isinstance(run.get("params"), dict)
                and isinstance(run["params"].get("host_threads"),
                               (int, float))):
            if run["params"]["host_threads"] < 1:
                fail(errors, f"{ctx}.params: host_threads < 1")
    return errors


def validate_adaptivity(doc):
    errors = []
    if not isinstance(doc, dict):
        return ["top-level value is not an object"]
    for key, want in {"placement": str, "page_bytes": (int, float),
                      "capacity_pages": (int, float),
                      "extensions": (int, float)}.items():
        if not isinstance(doc.get(key), want):
            fail(errors, f"missing or mistyped '{key}'")
    totals = doc.get("totals")
    if not isinstance(totals, dict):
        fail(errors, "'totals' is missing or not an object")
    else:
        spec = {k: v for k, v in ADAPTIVITY_SUMMARY_KEYS.items()
                if k not in ("extensions",)}
        check_typed_keys(errors, totals, spec, "totals")
        if totals.get("best_pure") not in ("unified", "zerocopy"):
            fail(errors, "totals.best_pure must be 'unified' or 'zerocopy'")
    records = doc.get("records")
    if not isinstance(records, list):
        return errors + ["'records' is missing or not an array"]
    if isinstance(doc.get("extensions"), (int, float)):
        if len(records) != doc["extensions"]:
            fail(errors, f"'extensions' is {doc['extensions']} but there "
                 f"are {len(records)} records")
    for i, rec in enumerate(records):
        ctx = f"records[{i}]"
        if not isinstance(rec, dict):
            fail(errors, f"{ctx}: not an object")
            continue
        check_typed_keys(
            errors, rec,
            {"extension": (int, float), "frontier_vertices": (int, float),
             "planned_bytes": (int, float), "w_spatial": (int, float),
             "unified_pages": (int, float),
             "top_page_overlap": (int, float), "heat": dict,
             "plan_cycles": (int, float), "actual": dict,
             "est_unified": dict, "est_zerocopy": dict,
             "regret_cycles": (int, float)}, ctx)
        if rec.get("extension") != i + 1:
            fail(errors, f"{ctx}: extension index is {rec.get('extension')}"
                 f", want {i + 1}")
        heat = rec.get("heat")
        if isinstance(heat, dict):
            check_typed_keys(
                errors, heat,
                {"nonzero_pages": (int, float), "max": (int, float),
                 "mean_nonzero": (int, float), "histogram": list},
                f"{ctx}.heat")
        actual = rec.get("actual")
        if isinstance(actual, dict):
            for key in ["access_cycles"] + COUNTER_KEYS:
                if key not in actual:
                    fail(errors, f"{ctx}.actual: missing '{key}'")
        for shadow in ("est_unified", "est_zerocopy"):
            if isinstance(rec.get(shadow), dict):
                check_typed_keys(errors, rec[shadow], SHADOW_KEYS,
                                 f"{ctx}.{shadow}")
    return errors


def validate_metrics(doc):
    errors = []
    if not isinstance(doc, dict):
        return ["top-level value is not an object"]
    columns = doc.get("columns")
    if not isinstance(columns, list):
        return ["'columns' is missing or not an array"]
    for gauge in ("cycles", "unified_page_count",
                  "adaptivity_regret_cycles"):
        if gauge not in columns:
            fail(errors, f"columns: missing gauge '{gauge}'")
    for key in COUNTER_KEYS:
        if key not in columns:
            fail(errors, f"columns: missing counter '{key}'")
    samples = doc.get("samples")
    if not isinstance(samples, list):
        return errors + ["'samples' is missing or not an array"]
    for i, row in enumerate(samples):
        if not isinstance(row, list) or len(row) != len(columns):
            fail(errors, f"samples[{i}]: row width != len(columns)")
    return errors


# gpusim-check checkers and the finding kinds each owns (keep in sync
# with gpusim::Sanitizer::KindName / CheckerName).
CHECKERS = ("memcheck", "initcheck", "racecheck")
FINDING_KINDS = {
    "out-of-bounds": "memcheck",
    "invalid-access": "memcheck",
    "leak": "memcheck",
    "double-free": "memcheck",
    "uninitialized-read": "initcheck",
    "race": "racecheck",
}
CHECK_ACTIVITY_KEYS = {
    "device_accesses": (int, float),
    "unified_accesses": (int, float),
    "bulk_accesses": (int, float),
    "allocations": (int, float),
    "frees": (int, float),
    "events_recorded": (int, float),
    "event_waits": (int, float),
}
CHECK_FINDING_KEYS = {
    "kind": str,
    "checker": str,
    "message": str,
    "object": str,
    "kernel": str,
    "phase": str,
    "task": (int, float),
    "stream": (int, float),
    "offset": (int, float),
    "bytes": (int, float),
    "occurrences": (int, float),
    "first_cycles": (int, float),
}


def validate_check(doc):
    errors = []
    if not isinstance(doc, dict):
        return ["top-level value is not an object"]
    checkers = doc.get("checkers")
    if not isinstance(checkers, dict):
        fail(errors, "'checkers' is missing or not an object")
    else:
        for name in CHECKERS:
            if not isinstance(checkers.get(name), bool):
                fail(errors, f"checkers: missing or non-bool '{name}'")
    summary = doc.get("summary")
    if not isinstance(summary, dict):
        fail(errors, "'summary' is missing or not an object")
    else:
        spec = {"total": (int, float), "occurrences": (int, float),
                "dropped_findings": (int, float)}
        spec.update({name: (int, float) for name in CHECKERS})
        check_typed_keys(errors, summary, spec, "summary")
    checked = doc.get("checked")
    if not isinstance(checked, dict):
        fail(errors, "'checked' is missing or not an object")
    else:
        check_typed_keys(errors, checked, CHECK_ACTIVITY_KEYS, "checked")
    findings = doc.get("findings")
    if not isinstance(findings, list):
        return errors + ["'findings' is missing or not an array"]
    per_checker = {name: 0 for name in CHECKERS}
    occurrences = 0
    for i, f in enumerate(findings):
        ctx = f"findings[{i}]"
        if not isinstance(f, dict):
            fail(errors, f"{ctx}: not an object")
            continue
        check_typed_keys(errors, f, CHECK_FINDING_KEYS, ctx)
        kind = f.get("kind")
        if kind not in FINDING_KINDS:
            fail(errors, f"{ctx}: unknown kind {kind!r}")
        elif f.get("checker") != FINDING_KINDS[kind]:
            fail(errors, f"{ctx}: kind {kind!r} belongs to "
                 f"'{FINDING_KINDS[kind]}', not {f.get('checker')!r}")
        else:
            per_checker[FINDING_KINDS[kind]] += 1
        if isinstance(f.get("occurrences"), (int, float)):
            if f["occurrences"] < 1:
                fail(errors, f"{ctx}: occurrences < 1")
            occurrences += f["occurrences"]
    if isinstance(summary, dict):
        if summary.get("total") != len(findings):
            fail(errors, f"summary.total is {summary.get('total')} but "
                 f"there are {len(findings)} findings")
        for name in CHECKERS:
            want = per_checker[name]
            if isinstance(summary.get(name), (int, float)) \
                    and summary[name] != want:
                fail(errors, f"summary.{name} is {summary[name]} but "
                     f"{want} findings belong to it")
        if isinstance(summary.get("occurrences"), (int, float)) \
                and summary["occurrences"] != occurrences:
            fail(errors, f"summary.occurrences is "
                 f"{summary['occurrences']}, want {occurrences}")
    return errors


CRITPATH_SPAN_KEYS = {
    "index": (int, float),
    "kind": str,
    "name": str,
    "phase": str,
    "stream": (int, float),
    "start": (int, float),
    "end": (int, float),
    "slack": (int, float),
}

CRITPATH_COMMAND_KINDS = (
    "kernel", "copy", "host-work", "wait-event", "synchronize",
    "fast-forward", "create-stream",
)


def validate_critpath(doc):
    errors = []
    if not isinstance(doc, dict):
        return ["top-level value is not an object"]
    check_typed_keys(
        errors, doc,
        {"partial": bool, "dropped_commands": (int, float),
         "total_cycles": (int, float),
         "critical_path_cycles": (int, float),
         "commands": (int, float), "streams": (int, float),
         "pcie_link_utilization": (int, float), "binding": str,
         "resource_cycles": dict, "phases": list,
         "critical_path_truncated": bool, "critical_path": list,
         "top_slack": list, "whatif": list}, "document")
    if doc.get("binding") not in RESOURCE_CLASSES:
        fail(errors, f"unknown binding {doc.get('binding')!r}")
    if isinstance(doc.get("streams"), (int, float)) and doc["streams"] < 1:
        fail(errors, "streams < 1 (default stream missing)")
    partial = doc.get("partial")
    if partial is False and doc.get("dropped_commands"):
        fail(errors, "dropped_commands > 0 but partial is false")
    if partial is True and not doc.get("dropped_commands"):
        fail(errors, "partial is true but dropped_commands is 0")
    cp = doc.get("critical_path_cycles")
    total = doc.get("total_cycles")
    if isinstance(cp, (int, float)) and isinstance(total, (int, float)):
        if not partial and cp > total:
            fail(errors, f"critical_path_cycles {cp!r} exceeds "
                 f"total_cycles {total!r}")
    attribution = check_resource_cycles(errors, doc.get("resource_cycles"),
                                        "resource_cycles")
    if attribution is not None and isinstance(cp, (int, float)):
        if fold_sum(attribution) != cp:
            fail(errors, f"resource_cycles: fold-sum "
                 f"{fold_sum(attribution)!r} != critical_path_cycles "
                 f"{cp!r} (attribution must be exact)")
    for i, ph in enumerate(doc.get("phases") or []):
        ctx = f"phases[{i}]"
        if not isinstance(ph, dict):
            fail(errors, f"{ctx}: not an object")
            continue
        ctx = f"phases[{i}] ({ph.get('name', '?')})"
        check_typed_keys(
            errors, ph,
            {"name": str, "invocations": (int, float),
             "cycles": (int, float), "binding": str,
             "attribution": dict}, ctx)
        if ph.get("binding") not in RESOURCE_CLASSES:
            fail(errors, f"{ctx}: unknown binding {ph.get('binding')!r}")
        attr = check_resource_cycles(errors, ph.get("attribution"),
                                     f"{ctx}.attribution")
        if attr is not None and isinstance(ph.get("cycles"), (int, float)):
            if fold_sum(attr) != ph["cycles"]:
                fail(errors, f"{ctx}.attribution: fold-sum "
                     f"{fold_sum(attr)!r} != cycles {ph['cycles']!r} "
                     f"(per-phase attribution must be exact)")
    for array in ("critical_path", "top_slack"):
        prev_index = None
        for i, span in enumerate(doc.get(array) or []):
            ctx = f"{array}[{i}]"
            if not isinstance(span, dict):
                fail(errors, f"{ctx}: not an object")
                continue
            if len(span) == 1 and "index" in span:
                continue  # elided entry (log overflow edge case)
            check_typed_keys(errors, span, CRITPATH_SPAN_KEYS, ctx)
            if span.get("kind") not in CRITPATH_COMMAND_KINDS:
                fail(errors, f"{ctx}: unknown kind {span.get('kind')!r}")
            if isinstance(span.get("slack"), (int, float)):
                if span["slack"] < 0:
                    fail(errors, f"{ctx}: negative slack")
            if array == "critical_path" \
                    and not doc.get("critical_path_truncated") \
                    and isinstance(span.get("index"), (int, float)):
                if prev_index is not None and span["index"] <= prev_index:
                    fail(errors, f"{ctx}: indices not strictly increasing")
                prev_index = span["index"]
    check_whatifs(errors, doc.get("whatif"), partial, cp, "whatif")
    return errors


def is_label(v):
    """Plan labels are '*' (wildcard) or a non-negative integer."""
    return v == "*" or (isinstance(v, int) and v >= 0)


def check_plan_pattern(errors, pattern, ctx):
    """Returns the vertex count when the pattern object is well-formed."""
    if not isinstance(pattern, dict):
        fail(errors, f"{ctx}: missing or not an object")
        return None
    check_typed_keys(errors, pattern,
                     {"num_vertices": int, "edges": list, "labels": list},
                     ctx)
    n = pattern.get("num_vertices")
    if not isinstance(n, int) or n < 1:
        fail(errors, f"{ctx}: num_vertices must be a positive integer")
        return None
    for i, e in enumerate(pattern.get("edges") or []):
        ectx = f"{ctx}.edges[{i}]"
        if (not isinstance(e, list) or len(e) != 2
                or not all(isinstance(v, int) for v in e)):
            fail(errors, f"{ectx}: want an [a, b] integer pair")
            continue
        if e[0] == e[1] or not all(0 <= v < n for v in e):
            fail(errors, f"{ectx}: endpoints out of range or equal")
    labels = pattern.get("labels")
    if isinstance(labels, list):
        if len(labels) != n:
            fail(errors, f"{ctx}.labels: {len(labels)} entries for "
                 f"{n} vertices")
        for i, l in enumerate(labels):
            if not is_label(l):
                fail(errors, f"{ctx}.labels[{i}]: want '*' or a "
                     f"non-negative integer, got {l!r}")
    return n


def check_plan_levels(errors, doc, n):
    """Per-level checks of a vertex plan (order, start, levels)."""
    order = doc.get("order")
    if not isinstance(order, list) or (
            n is not None and sorted(order) != list(range(n))):
        fail(errors, f"order: not a permutation of 0..{(n or 1) - 1}")
    start = doc.get("start")
    edge_parallel = False
    if not isinstance(start, dict):
        fail(errors, "'start' is missing or not an object")
    else:
        check_typed_keys(errors, start, {"mode": str, "ascending": bool},
                         "start")
        if start.get("mode") not in PLAN_START_MODES:
            fail(errors, f"start: unknown mode {start.get('mode')!r}")
        edge_parallel = start.get("mode") == "edge-parallel"
        if not is_label(start.get("label")):
            fail(errors, "start: label must be '*' or a non-negative "
                 "integer")
        if edge_parallel and not is_label(start.get("second_label")):
            fail(errors, "start: edge-parallel needs a second_label")
        rationale = start.get("rationale")
        if not isinstance(rationale, dict):
            fail(errors, "start.rationale is missing or not an object")
        else:
            check_typed_keys(errors, rationale, PLAN_START_RATIONALE_KEYS,
                             "start.rationale")
            # The profitability bit is a pure function of its inputs.
            if all(isinstance(rationale.get(k), (bool, int, float))
                   for k in PLAN_START_RATIONALE_KEYS):
                want = bool(rationale["edge_parallel_foldable"]
                            and rationale["est_pair_rows"]
                            >= rationale["est_start_rows"])
                if rationale["edge_parallel_profitable"] != want:
                    fail(errors, f"start.rationale: "
                         f"edge_parallel_profitable is "
                         f"{rationale['edge_parallel_profitable']}, "
                         f"want {want}")
    levels = doc.get("levels")
    if not isinstance(levels, list):
        fail(errors, "'levels' is missing or not an array")
        return
    first_depth = 2 if edge_parallel else 1
    for i, level in enumerate(levels):
        ctx = f"levels[{i}]"
        if not isinstance(level, dict):
            fail(errors, f"{ctx}: not an object")
            continue
        check_typed_keys(
            errors, level,
            {"depth": int, "intersect": list, "require_ascending": bool,
             "enforce_injective": bool, "restrictions": list,
             "count_only": bool, "est_rows": (int, float)}, ctx)
        depth = level.get("depth")
        if depth != first_depth + i:
            fail(errors, f"{ctx}: depth {depth!r}, want {first_depth + i}")
            continue
        for p in level.get("intersect") or []:
            if not isinstance(p, int) or not 0 <= p < depth:
                fail(errors, f"{ctx}.intersect: position {p!r} not in "
                     f"[0, {depth})")
        if not is_label(level.get("label")):
            fail(errors, f"{ctx}: label must be '*' or a non-negative "
                 f"integer")
        for j, r in enumerate(level.get("restrictions") or []):
            rctx = f"{ctx}.restrictions[{j}]"
            if not isinstance(r, dict):
                fail(errors, f"{rctx}: not an object")
                continue
            check_typed_keys(errors, r,
                             {"smaller_pos": int, "larger_pos": int}, rctx)
            lo, hi = r.get("smaller_pos"), r.get("larger_pos")
            if isinstance(lo, int) and isinstance(hi, int):
                if lo == hi or max(lo, hi) > depth or min(lo, hi) < 0 \
                        or depth not in (lo, hi):
                    fail(errors, f"{rctx}: positions ({lo}, {hi}) do not "
                         f"constrain depth {depth}")
        ws = level.get("write_strategy")
        if ws not in PLAN_WRITE_STRATEGIES:
            fail(errors, f"{ctx}: unknown write_strategy {ws!r}")
        pm = level.get("pre_merge")
        if pm != "inherit" and not isinstance(pm, bool):
            fail(errors, f"{ctx}: pre_merge must be 'inherit' or a bool")
        if isinstance(level.get("est_rows"), (int, float)) \
                and level["est_rows"] < 0:
            fail(errors, f"{ctx}: negative est_rows")
        rationale = level.get("rationale")
        if not isinstance(rationale, dict):
            fail(errors, f"{ctx}.rationale is missing or not an object")
            continue
        rctx = f"{ctx}.rationale"
        check_typed_keys(errors, rationale, PLAN_LEVEL_RATIONALE_KEYS, rctx)
        rule = rationale.get("write_strategy_rule")
        if rule not in PLAN_WRITE_STRATEGY_RULES:
            fail(errors, f"{rctx}: unknown write_strategy_rule {rule!r}")
        elif ws in PLAN_WRITE_STRATEGIES:
            # A rule fired exactly when the level pins a strategy.
            if (rule == "inherit") != (ws == "inherit"):
                fail(errors, f"{rctx}: write_strategy_rule {rule!r} "
                     f"inconsistent with write_strategy {ws!r}")
        pm_rule = rationale.get("pre_merge_rule")
        if pm_rule not in PLAN_PRE_MERGE_RULES:
            fail(errors, f"{rctx}: unknown pre_merge_rule {pm_rule!r}")
        elif (pm_rule == "inherit") != (pm == "inherit"):
            fail(errors, f"{rctx}: pre_merge_rule {pm_rule!r} "
                 f"inconsistent with pre_merge {pm!r}")
        width = rationale.get("intersect_width")
        if isinstance(width, int) \
                and isinstance(level.get("intersect"), list) \
                and width != len(level["intersect"]):
            fail(errors, f"{rctx}: intersect_width {width} != "
                 f"{len(level['intersect'])} intersect positions")


def validate_plan(doc):
    errors = []
    if not isinstance(doc, dict):
        return ["top-level value is not an object"]
    if doc.get("schema") != "gamma.plan.v1":
        fail(errors, f"schema is {doc.get('schema')!r}, want "
             f"'gamma.plan.v1'")
    kind = doc.get("kind")
    if kind not in PLAN_KINDS:
        fail(errors, f"unknown kind {kind!r} (know: {list(PLAN_KINDS)})")
        return errors
    check_typed_keys(errors, doc,
                     {"symmetry_broken": bool, "automorphisms": int,
                      "estimated_cost": (int, float)}, "document")
    if isinstance(doc.get("automorphisms"), int) \
            and doc["automorphisms"] < 1:
        fail(errors, "automorphisms < 1")
    n = None
    if kind in ("subgraph-match", "edge-join"):
        n = check_plan_pattern(errors, doc.get("pattern"), "pattern")
    if kind in ("subgraph-match", "motif-census"):
        if kind == "motif-census" and isinstance(doc.get("order"), list):
            n = len(doc["order"])
        check_plan_levels(errors, doc, n)
    if kind == "edge-join":
        edge_order = doc.get("edge_order")
        if not isinstance(edge_order, list):
            fail(errors, "'edge_order' is missing or not an array")
        else:
            pattern = doc.get("pattern")
            if isinstance(pattern, dict) \
                    and isinstance(pattern.get("edges"), list) \
                    and len(edge_order) != len(pattern["edges"]):
                fail(errors, f"edge_order covers {len(edge_order)} edges, "
                     f"pattern has {len(pattern['edges'])}")
    if kind == "frequent-mining":
        fpm = doc.get("fpm")
        if not isinstance(fpm, dict):
            fail(errors, "'fpm' is missing or not an object")
        else:
            check_typed_keys(errors, fpm,
                             {"max_edges": int, "min_support": int}, "fpm")
            if isinstance(fpm.get("max_edges"), int) \
                    and fpm["max_edges"] < 1:
                fail(errors, "fpm.max_edges < 1")
    return errors


VERIFY_OBLIGATIONS = (
    # Tier 1: structural well-formedness.
    "order-permutation", "pattern-connected", "start-edge",
    "label-consistent", "level-count", "intersect-bounds",
    "prefix-connected", "restriction-bounds", "count-only-last",
    "pre-merge-width", "motif-shape", "fpm-params", "edge-order",
    # Tier 2: semantic soundness.
    "automorphism-count", "edge-coverage", "restriction-sound",
    "restriction-complete", "restriction-unclaimed", "injective-required",
    # Tier 3: abstract resource interpretation (advisory).
    "prealloc-overflow",
)

VERIFY_SEVERITIES = ("error", "warning")

VERIFY_TIERS = ("structural", "semantic", "resources")


def validate_verify(doc):
    errors = []
    if not isinstance(doc, dict):
        return ["top-level value is not an object"]
    if doc.get("schema") != "gamma.verify.v1":
        fail(errors, f"schema is {doc.get('schema')!r}, want "
             f"'gamma.verify.v1'")
    if doc.get("kind") not in PLAN_KINDS:
        fail(errors, f"unknown kind {doc.get('kind')!r} "
             f"(know: {list(PLAN_KINDS)})")
    check_typed_keys(errors, doc,
                     {"verified": bool, "obligations_checked": int,
                      "errors": int, "warnings": int,
                      "automorphisms": int}, "document")
    tiers = doc.get("tiers")
    if not isinstance(tiers, dict):
        fail(errors, "'tiers' is missing or not an object")
    else:
        for name in VERIFY_TIERS:
            tier = tiers.get(name)
            if not isinstance(tier, dict):
                fail(errors, f"tiers.{name} is missing or not an object")
                continue
            check_typed_keys(errors, tier, {"checked": bool, "passed": bool},
                             f"tiers.{name}")
            if tier.get("checked") is False and tier.get("passed") is True:
                fail(errors, f"tiers.{name} passed without being checked")
        structural = tiers.get("structural")
        if isinstance(structural, dict) \
                and structural.get("passed") is False:
            # A structural refutation is final: the later tiers must not
            # have run against an ill-formed plan.
            for name in ("semantic", "resources"):
                tier = tiers.get(name)
                if isinstance(tier, dict) and tier.get("checked") is True:
                    fail(errors, f"tiers.{name} ran despite a structural "
                         f"refutation")
    abstract = doc.get("abstract")
    if not isinstance(abstract, list):
        fail(errors, "'abstract' is missing or not an array")
    else:
        for i, level in enumerate(abstract):
            ctx = f"abstract[{i}]"
            if not isinstance(level, dict):
                fail(errors, f"{ctx} is not an object")
                continue
            check_typed_keys(errors, level,
                             {"depth": int, "rows_hi": (int, float),
                              "width": int, "prealloc_entries": (int, float),
                              "pool_entries": (int, float)}, ctx)
            if isinstance(level.get("rows_hi"), (int, float)) \
                    and level["rows_hi"] < 0:
                fail(errors, f"{ctx}: rows_hi < 0")
            if isinstance(level.get("width"), int) and level["width"] < 1:
                fail(errors, f"{ctx}: width < 1")
    findings = doc.get("findings")
    seen_errors = seen_warnings = 0
    if not isinstance(findings, list):
        fail(errors, "'findings' is missing or not an array")
    else:
        for i, finding in enumerate(findings):
            ctx = f"findings[{i}]"
            if not isinstance(finding, dict):
                fail(errors, f"{ctx} is not an object")
                continue
            check_typed_keys(errors, finding,
                             {"obligation": str, "severity": str,
                              "depth": int, "message": str}, ctx)
            if isinstance(finding.get("obligation"), str) \
                    and finding["obligation"] not in VERIFY_OBLIGATIONS:
                fail(errors, f"{ctx}: unknown obligation "
                     f"{finding['obligation']!r}")
            severity = finding.get("severity")
            if isinstance(severity, str):
                if severity not in VERIFY_SEVERITIES:
                    fail(errors, f"{ctx}: unknown severity {severity!r}")
                elif severity == "error":
                    seen_errors += 1
                else:
                    seen_warnings += 1
            if not isinstance(finding.get("message"), str) \
                    or not finding.get("message"):
                fail(errors, f"{ctx}: empty message")
        if isinstance(doc.get("errors"), int) \
                and doc["errors"] != seen_errors:
            fail(errors, f"document claims {doc['errors']} error(s), "
                 f"findings contain {seen_errors}")
        if isinstance(doc.get("warnings"), int) \
                and doc["warnings"] != seen_warnings:
            fail(errors, f"document claims {doc['warnings']} warning(s), "
                 f"findings contain {seen_warnings}")
        if isinstance(doc.get("verified"), bool) \
                and doc["verified"] != (seen_errors == 0):
            fail(errors, f"verified={doc['verified']} inconsistent with "
                 f"{seen_errors} error-severity finding(s)")
    if isinstance(doc.get("obligations_checked"), int) \
            and isinstance(findings, list) \
            and doc["obligations_checked"] < len(findings):
        fail(errors, f"obligations_checked {doc['obligations_checked']} < "
             f"{len(findings)} finding(s)")
    return errors


def validate_fuzz(doc):
    errors = []
    if not isinstance(doc, dict):
        return ["top-level value is not an object"]
    if doc.get("schema") != "gamma.fuzz.v1":
        fail(errors, f"schema is {doc.get('schema')!r}, want "
             f"'gamma.fuzz.v1'")
    check_typed_keys(errors, doc,
                     {"seed": int, "patterns": int, "mutants_refuted": int,
                      "mutants_benign": int}, "document")
    failures = doc.get("failures")
    if not isinstance(failures, list):
        fail(errors, "'failures' is missing or not an array")
    else:
        for i, failure in enumerate(failures):
            ctx = f"failures[{i}]"
            if not isinstance(failure, dict):
                fail(errors, f"{ctx} is not an object")
                continue
            check_typed_keys(errors, failure,
                             {"kind": str, "pattern": str, "detail": str},
                             ctx)
    return errors


VALIDATORS = {
    "gamma.bench.v1": validate,
    "gamma.adaptivity.v1": validate_adaptivity,
    "gamma.metrics.v1": validate_metrics,
    "gamma.check.v1": validate_check,
    "gamma.critpath.v1": validate_critpath,
    "gamma.plan.v1": validate_plan,
    "gamma.planprof.v1": validate_planprof,
    "gamma.verify.v1": validate_verify,
    "gamma.fuzz.v1": validate_fuzz,
}


def main(argv):
    args = list(argv[1:])
    expect_clean = "--expect-clean" in args
    if expect_clean:
        args.remove("--expect-clean")
    expect_verified = "--expect-verified" in args
    if expect_verified:
        args.remove("--expect-verified")
    if len(args) != 1:
        print(f"usage: {argv[0]} [--expect-clean] [--expect-verified] "
              f"<file.json>", file=sys.stderr)
        return 2
    path = args[0]
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"{path}: {e}", file=sys.stderr)
        return 1
    schema = doc.get("schema") if isinstance(doc, dict) else None
    validator = VALIDATORS.get(schema)
    if validator is None:
        print(f"{path}: unknown schema {schema!r} "
              f"(know: {sorted(VALIDATORS)})", file=sys.stderr)
        return 1
    errors = validator(doc)
    if expect_clean:
        if schema != "gamma.check.v1":
            print(f"{path}: --expect-clean only applies to gamma.check.v1",
                  file=sys.stderr)
            return 2
        if not errors and doc.get("findings"):
            for f in doc["findings"]:
                print(f"{path}: finding [{f.get('checker')}] "
                      f"{f.get('kind')}: {f.get('message')}",
                      file=sys.stderr)
            errors = [f"expected a clean report but it has "
                      f"{len(doc['findings'])} finding(s)"]
    if expect_verified:
        if schema != "gamma.verify.v1":
            print(f"{path}: --expect-verified only applies to "
                  f"gamma.verify.v1", file=sys.stderr)
            return 2
        if not errors and not doc.get("verified"):
            for f in doc.get("findings", []):
                if f.get("severity") == "error":
                    print(f"{path}: refuted [{f.get('obligation')}] "
                          f"{f.get('message')}", file=sys.stderr)
            errors = [f"expected a verified plan but the report refutes "
                      f"it with {doc.get('errors')} error(s)"]
    if errors:
        for msg in errors:
            print(f"{path}: {msg}", file=sys.stderr)
        return 1
    argv = [argv[0], path]  # legacy message paths below use argv[1]
    if schema == "gamma.bench.v1":
        n = len(doc["runs"])
        skipped = sum(1 for r in doc["runs"] if r.get("skipped"))
        print(f"{argv[1]}: OK — {n} runs ({skipped} skipped), "
              f"binary {doc['binary']}")
    elif schema == "gamma.adaptivity.v1":
        print(f"{argv[1]}: OK — {len(doc['records'])} extension records, "
              f"placement {doc.get('placement')}")
    elif schema == "gamma.check.v1":
        enabled = ",".join(c for c in CHECKERS
                           if doc.get("checkers", {}).get(c))
        print(f"{argv[1]}: OK — {len(doc['findings'])} finding(s), "
              f"checkers {enabled or 'none'}")
    elif schema == "gamma.critpath.v1":
        tag = "PARTIAL" if doc.get("partial") else "complete"
        print(f"{argv[1]}: OK — {tag}, {doc['commands']} commands, "
              f"bound on {doc['binding']}, "
              f"{len(doc.get('whatif', []))} what-ifs")
    elif schema == "gamma.plan.v1":
        sym = "symmetry-broken" if doc.get("symmetry_broken") \
            else "unrestricted"
        print(f"{argv[1]}: OK — {doc['kind']} plan, "
              f"{len(doc.get('levels', []))} level(s), {sym}")
    elif schema == "gamma.planprof.v1":
        attr = "attributed" if doc.get("attribution_available") \
            else "no attribution"
        print(f"{argv[1]}: OK — {doc['kind']} run, "
              f"{len(doc['levels'])} level(s), worst Q-error "
              f"{doc['summary'].get('worst_q_error'):.6g}, {attr}")
    elif schema == "gamma.verify.v1":
        verdict = "VERIFIED" if doc.get("verified") else "REFUTED"
        print(f"{argv[1]}: OK — {verdict} {doc['kind']} plan, "
              f"{doc['obligations_checked']} obligation(s) checked, "
              f"{doc['errors']} error(s), {doc['warnings']} warning(s)")
    elif schema == "gamma.fuzz.v1":
        print(f"{argv[1]}: OK — seed {doc['seed']}, {doc['patterns']} "
              f"patterns, {doc['mutants_refuted']} mutants refuted, "
              f"{len(doc['failures'])} failure(s)")
    else:
        print(f"{argv[1]}: OK — {len(doc['samples'])} samples, "
              f"{len(doc['columns'])} columns")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
